"""Equivalence of HistogramFleet against a looped-session reference.

The fleet contract (README.md, "Fleet serving"): every fleet operation
is *byte*-identical — verdicts, learned histograms, query logs, and
per-member memo-hit accounting — to looping
``HistogramSession(sources[f], n, rng=rngs[f], ...)`` over the members
with the same seeds.  Pinned here on deterministic fleets, a hypothesis
lockstep over random fleets (mixed sizes, metrics, epsilons, operation
orders), the sort-free compile kernels the fleet plants, and the cache
lifetime / invalidation rules the facade relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ArraySource, CountingSource, HistogramFleet, HistogramSession
from repro.core.flatness import FleetTesterSketches, compile_tester_sketches
from repro.core.greedy import GreedySamples, compile_greedy_sketches
from repro.core.params import GreedyParams, TesterParams
from repro.distributions import families
from repro.errors import InvalidParameterError
from repro.samples.collision import (
    batched_interval_prefixes,
    dense_interval_prefixes,
)
from repro.samples.estimators import MultiSketch
from repro.samples.sample_set import SampleSet

TEST_PARAMS = TesterParams(num_sets=7, set_size=3_000)
LEARN_PARAMS = GreedyParams(
    weight_sample_size=4_000, collision_sets=5, collision_set_size=2_000, rounds=3
)


def make_fleet_and_sessions(n=128, fleet_size=6, seed=0, **kwargs):
    """A fleet plus its looped-session reference over the same seeds."""
    base = families.zipf(n, 1.0)
    rng = np.random.default_rng(seed)
    sources = [
        ArraySource(base.sample(20_000, np.random.default_rng(seed + 100 + f)), n)
        for f in range(fleet_size)
    ]
    seeds = [int(rng.integers(0, 2**31)) for _ in range(fleet_size)]
    fleet = HistogramFleet(sources, n, rngs=seeds, **kwargs)
    sessions = [
        HistogramSession(source, n, rng=member_seed, **kwargs)
        for source, member_seed in zip(sources, seeds)
    ]
    return fleet, sessions


def memo_stats(session_like, params):
    sketches = session_like._bundle._tester_compiled_cache[
        (params.num_sets, params.set_size)
    ]
    return sketches.memo_hits, sketches.memo_misses, sketches.memo_size


class TestFleetEquivalence:
    """fleet == looped sessions, bit for bit, logs and accounting included."""

    def test_test_many_and_min_k(self):
        fleet, sessions = make_fleet_and_sessions(test_budget=TEST_PARAMS)
        grid = [(2, 0.3), (4, 0.25), (6, 0.25)]
        assert fleet.test_many(grid, norm="l2") == [
            s.test_many(grid, norm="l2") for s in sessions
        ]
        assert fleet.min_k(0.3, max_k=8, norm="l2") == [
            s.min_k(0.3, max_k=8, norm="l2") for s in sessions
        ]
        # Memo accounting matches per member after the whole op sequence.
        for f, session in enumerate(sessions):
            assert memo_stats(fleet.session(f), TEST_PARAMS) == (
                memo_stats(session, TEST_PARAMS)
            )

    def test_l1_tester(self):
        fleet, sessions = make_fleet_and_sessions(test_budget=TEST_PARAMS)
        assert fleet.test_l1(3, 0.3) == [s.test_l1(3, 0.3) for s in sessions]
        assert fleet.min_k(0.3, max_k=6, norm="l1") == [
            s.min_k(0.3, max_k=6, norm="l1") for s in sessions
        ]

    def test_learn_and_learn_many(self):
        fleet, sessions = make_fleet_and_sessions(learn_budget=LEARN_PARAMS)
        grid = [(2, 0.3), (3, 0.25)]
        fleet_results = fleet.learn_many(grid)
        session_results = [s.learn_many(grid) for s in sessions]
        for fleet_member, session_member in zip(fleet_results, session_results):
            for a, b in zip(fleet_member, session_member):
                assert np.array_equal(a.histogram.boundaries, b.histogram.boundaries)
                assert np.array_equal(a.histogram.values, b.histogram.values)
                assert a.rounds == b.rounds
                assert list(a.priority_histogram.pieces()) == list(
                    b.priority_histogram.pieces()
                )

    def test_draw_accounting_matches_sessions(self):
        fleet, sessions = make_fleet_and_sessions(test_budget=TEST_PARAMS)
        fleet.test_many([(2, 0.3), (4, 0.25)], norm="l2")
        for session in sessions:
            session.test_many([(2, 0.3), (4, 0.25)], norm="l2")
        assert fleet.samples_drawn == [s.samples_drawn for s in sessions]
        assert fleet.draw_events == [s.draw_events for s in sessions]
        # The whole grid issued one test-family draw event per member.
        assert all(events["test"] == 1 for events in fleet.draw_events)

    def test_full_engine_passthrough(self):
        fleet, sessions = make_fleet_and_sessions(test_budget=TEST_PARAMS)
        assert fleet.test_l2(3, 0.3, engine="full") == fleet.test_l2(3, 0.3)
        assert fleet.min_k(0.3, max_k=5, norm="l2", engine="full") == fleet.min_k(
            0.3, max_k=5, norm="l2"
        )

    def test_interleaved_learn_test_matches_sessions(self):
        """Draw interleaving across families follows the op order."""
        fleet, sessions = make_fleet_and_sessions(
            test_budget=TEST_PARAMS, learn_budget=LEARN_PARAMS
        )
        fleet_learn = fleet.learn(2, 0.3)
        fleet_test = fleet.test_l2(3, 0.3)
        session_learn = [s.learn(2, 0.3) for s in sessions]
        session_test = [s.test_l2(3, 0.3) for s in sessions]
        assert fleet_test == session_test
        for a, b in zip(fleet_learn, session_learn):
            assert np.array_equal(a.histogram.values, b.histogram.values)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_lockstep_random_fleets(seed):
    """Hypothesis lockstep: random fleets, mixed ops/metrics/epsilons.

    A random fleet size, a random op sequence mixing both norms,
    several epsilons, learn calls, and min-k sweeps — outputs and query
    logs must equal the looped single-session reference point for point,
    and each member's memo accounting must tally exactly.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(32, 128))
    fleet_size = int(rng.integers(1, 7))
    pieces = int(rng.integers(1, 5))
    dist = families.random_tiling_histogram(n, pieces, rng=seed % 17 + 1, min_piece=2)
    seeds = [int(rng.integers(0, 2**31)) for _ in range(fleet_size)]
    params = TesterParams(num_sets=5, set_size=1_500)
    learn_params = GreedyParams(
        weight_sample_size=1_000, collision_sets=3, collision_set_size=800, rounds=2
    )
    fleet = HistogramFleet([dist] * fleet_size, n, rngs=seeds, test_budget=params)
    sessions = [
        HistogramSession(dist, n, rng=s, test_budget=params) for s in seeds
    ]

    num_ops = int(rng.integers(2, 5))
    for _ in range(num_ops):
        op = rng.choice(["l1", "l2", "min_k", "learn"])
        epsilon = float(rng.choice([0.2, 0.25, 0.3, 0.4]))
        k = int(rng.integers(1, max(n // 4, 2)))
        if op == "learn":
            got = fleet.learn(k, epsilon, params=learn_params)
            want = [s.learn(k, epsilon, params=learn_params) for s in sessions]
            for a, b in zip(got, want):
                assert np.array_equal(a.histogram.boundaries, b.histogram.boundaries)
                assert np.array_equal(a.histogram.values, b.histogram.values)
                assert a.rounds == b.rounds
        elif op == "min_k":
            norm = "l2" if rng.integers(2) else "l1"
            max_k = int(rng.integers(1, n + 1))
            assert fleet.min_k(epsilon, max_k=max_k, norm=norm) == [
                s.min_k(epsilon, max_k=max_k, norm=norm) for s in sessions
            ]
        else:
            runner = HistogramFleet.test_l2 if op == "l2" else HistogramFleet.test_l1
            sess_runner = (
                HistogramSession.test_l2 if op == "l2" else HistogramSession.test_l1
            )
            assert runner(fleet, k, epsilon) == [
                sess_runner(s, k, epsilon) for s in sessions
            ]

    key = (params.num_sets, params.set_size)
    for f, session in enumerate(sessions):
        fleet_cache = fleet.session(f)._bundle._tester_compiled_cache
        session_cache = session._bundle._tester_compiled_cache
        assert (key in fleet_cache) == (key in session_cache)
        if key in fleet_cache:
            a, b = fleet_cache[key], session_cache[key]
            assert (a.memo_hits, a.memo_misses, a.memo_size) == (
                b.memo_hits, b.memo_misses, b.memo_size
            )
            # Every probe was a hit or a miss; misses are distinct keys.
            assert a.memo_misses == a.memo_size


class TestDenseCompileKernels:
    """The sort-free builders equal the sort-based ones, bit for bit."""

    def test_dense_interval_prefixes_match_batched(self):
        rng = np.random.default_rng(4)
        n = 97
        sets = [rng.integers(0, n, size=size) for size in (500, 500, 500)]
        grid = np.arange(n + 1, dtype=np.int64)
        dense = dense_interval_prefixes(sets, n)
        sorted_rows = batched_interval_prefixes(sets, n, grid)
        assert np.array_equal(dense[0], sorted_rows[0])
        assert np.array_equal(dense[1], sorted_rows[1])

    def test_dense_interval_prefixes_validation(self):
        with pytest.raises(InvalidParameterError):
            dense_interval_prefixes([np.array([1, 99])], 10)
        with pytest.raises(InvalidParameterError):
            dense_interval_prefixes([np.array([[1]])], 10)
        with pytest.raises(InvalidParameterError):
            dense_interval_prefixes([np.array([0])], 0)
        empty_counts, empty_pairs = dense_interval_prefixes([], 10)
        assert empty_counts.shape == (0, 11)
        assert empty_pairs.shape == (0, 11)

    def test_dense_greedy_compile_matches_sorted(self):
        dist = families.zipf(64, 1.0)
        rng = np.random.default_rng(7)
        samples = GreedySamples(
            dist.sample(2_000, rng), tuple(dist.sample(1_000, rng) for _ in range(3))
        )
        sorted_compiled = compile_greedy_sketches(samples, 64, method="fast")
        dense_compiled = compile_greedy_sketches(
            samples, 64, method="fast", prefixes="dense"
        )
        assert np.array_equal(
            sorted_compiled.candidates.grid, dense_compiled.candidates.grid
        )
        assert np.array_equal(
            sorted_compiled.weight_prefix, dense_compiled.weight_prefix
        )
        assert np.array_equal(
            sorted_compiled.pair_prefix_cols, dense_compiled.pair_prefix_cols
        )
        assert np.array_equal(sorted_compiled.self_costs, dense_compiled.self_costs)
        assert np.array_equal(
            sorted_compiled.weight_set.sorted_values,
            dense_compiled.weight_set.sorted_values,
        )
        with pytest.raises(InvalidParameterError):
            compile_greedy_sketches(samples, 64, prefixes="magic")

    def test_sample_set_from_sorted(self):
        values = np.sort(np.random.default_rng(1).integers(0, 32, size=200))
        assert np.array_equal(
            SampleSet.from_sorted(values, 32).sorted_values,
            SampleSet(values, 32).sorted_values,
        )
        with pytest.raises(InvalidParameterError):
            SampleSet.from_sorted(np.array([3, 1, 2]), 32)
        with pytest.raises(InvalidParameterError):
            SampleSet.from_sorted(np.array([0, 40]), 32)

    def test_fleet_member_compile_matches_session_compile(self):
        """A fleet slab holds exactly what compile_tester_sketches builds."""
        dist = families.sawtooth(48)
        sets = dist.sample_sets(3, 1_000, np.random.default_rng(2))
        reference = compile_tester_sketches(MultiSketch.from_sample_sets(sets, 48))
        fleet_sketches = FleetTesterSketches(48, 3, 1_000, fleet_size=2)
        member = fleet_sketches.compile_member(1, [np.asarray(s) for s in sets])
        assert np.array_equal(member._count_cols, reference._count_cols)
        assert np.array_equal(member._pair_cols, reference._pair_cols)
        assert fleet_sketches.member(1) is member
        with pytest.raises(InvalidParameterError):
            fleet_sketches.member(0)  # not compiled yet


class TestFleetCacheLifetime:
    """Per-member invalidation and plant/adopt coherence."""

    def test_invalidate_member_redraws_only_that_member(self):
        fleet, _ = make_fleet_and_sessions(test_budget=TEST_PARAMS)
        fleet.test_l2(3, 0.3)
        events_before = [e["test"] for e in fleet.draw_events]
        fleet.invalidate(2)
        fleet.test_l2(3, 0.3)
        events_after = [e["test"] for e in fleet.draw_events]
        assert events_after[2] == events_before[2] + 1
        assert all(
            after == before
            for f, (after, before) in enumerate(zip(events_after, events_before))
            if f != 2
        )

    def test_repeat_op_is_all_memo_hits(self):
        fleet, _ = make_fleet_and_sessions(test_budget=TEST_PARAMS)
        first = fleet.test_l2(4, 0.3)
        misses = [
            memo_stats(fleet.session(f), TEST_PARAMS)[1]
            for f in range(fleet.size)
        ]
        assert fleet.test_l2(4, 0.3) == first
        assert [
            memo_stats(fleet.session(f), TEST_PARAMS)[1]
            for f in range(fleet.size)
        ] == misses

    def test_session_compiled_member_is_adopted_with_memo(self):
        """A member whose session compiled first keeps its verdict memo."""
        fleet, _ = make_fleet_and_sessions(test_budget=TEST_PARAMS)
        # Drive one member's session directly before any fleet op.
        direct = fleet.session(3).test_l2(4, 0.3)
        planted = fleet.session(3)._bundle._tester_compiled_cache[
            (TEST_PARAMS.num_sets, TEST_PARAMS.set_size)
        ]
        misses_before = planted.memo_misses
        results = fleet.test_l2(4, 0.3)
        assert results[3] == direct
        adopted = fleet.session(3)._bundle._tester_compiled_cache[
            (TEST_PARAMS.num_sets, TEST_PARAMS.set_size)
        ]
        assert adopted is planted  # same object, memo preserved
        assert adopted.memo_misses == misses_before  # replayed from memo

    def test_counting_sources_one_budget_per_member(self):
        base = families.zipf(64, 1.0)
        counters = [CountingSource(base) for _ in range(3)]
        fleet = HistogramFleet(counters, 64, rngs=[1, 2, 3], test_budget=TEST_PARAMS)
        fleet.test_many([(2, 0.3), (4, 0.25), (6, 0.2)], norm="l2")
        fleet.min_k(0.3, max_k=6, norm="l2")
        for counter in counters:
            assert counter.calls == TEST_PARAMS.num_sets
            assert counter.samples_drawn == TEST_PARAMS.total_samples


class TestFleetValidation:
    def test_bad_construction(self):
        dist = families.uniform(16)
        with pytest.raises(InvalidParameterError):
            HistogramFleet([], 16)
        with pytest.raises(InvalidParameterError):
            HistogramFleet([dist], 16, rngs=[1, 2])
        with pytest.raises(InvalidParameterError):
            HistogramFleet([dist], 16, rngs=[1], rng=2)
        with pytest.raises(InvalidParameterError):
            HistogramFleet([dist], 16, tester_engine="magic")

    def test_bad_ops(self):
        fleet = HistogramFleet([families.uniform(16)], 16, rngs=[1])
        with pytest.raises(InvalidParameterError):
            fleet.test_many([(2, 0.3)], norm="tv")
        with pytest.raises(InvalidParameterError):
            fleet.min_k(0.3, max_k=0)
        with pytest.raises(InvalidParameterError):
            fleet.min_k(0.3, norm="tv")
        with pytest.raises(InvalidParameterError):
            fleet.test_l2(2, 0.3, engine="magic")

    def test_spawned_rngs_are_independent(self):
        dist = families.uniform(32)
        fleet = HistogramFleet(
            [dist, dist], 32, rng=7, test_budget=TesterParams(num_sets=3, set_size=64)
        )
        results = fleet.test_l2(2, 0.4)
        assert len(results) == 2
        assert fleet.size == 2


class TestMemberSubsets:
    """members= restricts ops; results equal the looped subset."""

    def test_subset_probes_match_sessions(self):
        fleet, sessions = make_fleet_and_sessions(test_budget=TEST_PARAMS)
        subset = [4, 1]
        assert fleet.test_l2(3, 0.3, members=subset) == [
            sessions[4].test_l2(3, 0.3), sessions[1].test_l2(3, 0.3)
        ]
        assert fleet.min_k(0.3, max_k=6, norm="l2", members=subset) == [
            sessions[4].min_k(0.3, max_k=6, norm="l2"),
            sessions[1].min_k(0.3, max_k=6, norm="l2"),
        ]
        assert fleet.test_many([(2, 0.3)], norm="l2", members=[2]) == [
            sessions[2].test_many([(2, 0.3)], norm="l2")
        ]

    def test_subset_only_draws_listed_members(self):
        fleet, _ = make_fleet_and_sessions(test_budget=TEST_PARAMS)
        fleet.test_l2(3, 0.3, members=[0, 2])
        events = [e["test"] for e in fleet.draw_events]
        assert events[0] == 1 and events[2] == 1
        assert all(e == 0 for f, e in enumerate(events) if f not in (0, 2))

    def test_bad_subset_rejected(self):
        fleet, _ = make_fleet_and_sessions(test_budget=TEST_PARAMS)
        with pytest.raises(InvalidParameterError):
            fleet.test_l2(3, 0.3, members=[99])


class TestRecompileDetachesOldMember:
    """Recompiling a slab must not mutate previously issued sketches."""

    def test_held_compiled_object_stays_consistent(self):
        fleet, _ = make_fleet_and_sessions(fleet_size=2, test_budget=TEST_PARAMS)
        first = fleet.test_l2(3, 0.3)
        key = (TEST_PARAMS.num_sets, TEST_PARAMS.set_size)
        held = fleet.session(0)._bundle._tester_compiled_cache[key]
        count_before = held._count_cols.copy()
        verdict_before = held.query(0, 64, "l2", 0.3)
        # Invalidate and recompile member 0's slab from a fresh draw.
        fleet.invalidate(0)
        fleet.test_l2(3, 0.3)
        # The held (stale) object kept its own data and verdicts...
        assert np.array_equal(held._count_cols, count_before)
        assert held.query(0, 64, "l2", 0.3) == verdict_before
        # ...while the fleet serves a freshly compiled member.
        fresh = fleet.session(0)._bundle._tester_compiled_cache[key]
        assert fresh is not held
        assert first[1] == fleet.test_l2(3, 0.3)[1]  # member 1 untouched
