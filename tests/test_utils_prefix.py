"""Tests for repro.utils.prefix."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.prefix import interval_sums, pairs_count, prefix_sums


class TestPrefixSums:
    def test_basic(self):
        assert np.array_equal(prefix_sums([1, 2, 3]), [0, 1, 3, 6])

    def test_empty(self):
        assert np.array_equal(prefix_sums(np.array([])), [0])

    def test_floats(self):
        result = prefix_sums([0.5, 0.25])
        assert np.allclose(result, [0.0, 0.5, 0.75])

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=50))
    def test_interval_sum_matches_slice_sum(self, values):
        prefix = prefix_sums(np.array(values, dtype=np.int64))
        n = len(values)
        for a in range(n + 1):
            for b in range(a, n + 1):
                assert prefix[b] - prefix[a] == sum(values[a:b])


class TestIntervalSums:
    def test_vectorised(self):
        prefix = prefix_sums([1, 2, 3, 4])
        starts = np.array([0, 1, 2])
        stops = np.array([4, 3, 2])
        assert np.array_equal(interval_sums(prefix, starts, stops), [10, 5, 0])


class TestPairsCount:
    def test_scalar(self):
        assert pairs_count(0) == 0
        assert pairs_count(1) == 0
        assert pairs_count(2) == 1
        assert pairs_count(5) == 10

    def test_array(self):
        assert np.array_equal(pairs_count(np.array([0, 1, 2, 3])), [0, 0, 1, 3])

    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_comb(self, x):
        import math

        assert pairs_count(x) == math.comb(x, 2)

    def test_no_overflow_for_large_counts(self):
        # 10^6 samples -> ~5 * 10^11 pairs; must stay exact in int64.
        assert pairs_count(1_000_000) == 499_999_500_000
