"""Tests of the top-level public API surface."""

from __future__ import annotations

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_exception_hierarchy(self):
        for exc in (
            repro.InvalidDistributionError,
            repro.InvalidHistogramError,
            repro.InvalidIntervalError,
            repro.InvalidParameterError,
            repro.InsufficientSamplesError,
        ):
            assert issubclass(exc, repro.ReproError)
        assert issubclass(repro.ReproError, Exception)

    def test_end_to_end_learn(self):
        """The README quickstart path, via top-level names only."""
        from repro.distributions import families

        dist = families.random_tiling_histogram(64, 3, rng=1)
        result = repro.learn_histogram(dist, 64, 3, 0.3, scale=0.1, rng=2)
        assert isinstance(result.histogram, repro.TilingHistogram)
        assert repro.l2_distance(dist, result.histogram) < 0.3 + 0.1

    def test_end_to_end_test(self):
        from repro.core.params import TesterParams
        from repro.distributions import families

        dist = families.uniform(64)
        verdict = repro.test_k_histogram_l1(
            dist, 64, 1, 0.3, params=TesterParams(num_sets=5, set_size=5_000), rng=1
        )
        assert verdict.accepted

    def test_end_to_end_distance(self):
        from repro.distributions import families

        assert repro.distance_to_k_histogram(families.uniform(32), 1) == pytest.approx(0.0)
        assert repro.is_k_histogram(families.uniform(32), 1)

    def test_interval_exported(self):
        assert repro.Interval(0, 4).length == 4
