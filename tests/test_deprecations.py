"""The PR-1 seed-compat one-shot shims are formally deprecated.

Each retired entry point must (a) emit a ``DeprecationWarning`` naming
its session replacement and (b) keep returning exactly what the session
front door returns at the same seed — deprecation must not change
behaviour for existing callers.
"""

from __future__ import annotations

import pytest

from repro.api import HistogramSession
from repro.core.greedy import learn_histogram
from repro.core.params import GreedyParams, TesterParams
from repro.core.selection import estimate_min_k
from repro.core.tester import test_k_histogram_l1 as khist_test_l1
from repro.core.tester import test_k_histogram_l2 as khist_test_l2
from repro.distributions import families

N = 64
DIST = families.random_tiling_histogram(N, 3, rng=2, min_piece=8)
LEARN_PARAMS = GreedyParams(
    weight_sample_size=800, collision_sets=3, collision_set_size=400, rounds=2
)
TEST_PARAMS = TesterParams(num_sets=4, set_size=900)


@pytest.mark.parametrize(
    "name,call",
    [
        (
            "learn_histogram",
            lambda: learn_histogram(DIST, N, 3, 0.3, params=LEARN_PARAMS, rng=1),
        ),
        (
            "test_k_histogram_l2",
            lambda: khist_test_l2(DIST, N, 3, 0.3, params=TEST_PARAMS, rng=1),
        ),
        (
            "test_k_histogram_l1",
            lambda: khist_test_l1(DIST, N, 3, 0.3, params=TEST_PARAMS, rng=1),
        ),
        (
            "estimate_min_k",
            lambda: estimate_min_k(
                DIST, N, 0.3, max_k=5, params=TEST_PARAMS, rng=1
            ),
        ),
    ],
)
def test_one_shot_shims_warn(name, call):
    """Every shim emits the standard deprecation warning, by name."""
    with pytest.warns(DeprecationWarning, match=f"{name} one-shot entry point"):
        call()


def test_deprecated_shims_still_match_sessions():
    """Deprecation changed nothing: shim output == fresh session output."""
    with pytest.warns(DeprecationWarning):
        legacy = khist_test_l1(DIST, N, 3, 0.3, params=TEST_PARAMS, rng=7)
    fresh = HistogramSession(DIST, N, rng=7).test_l1(3, 0.3, params=TEST_PARAMS)
    assert legacy == fresh

    with pytest.warns(DeprecationWarning):
        legacy_learn = learn_histogram(
            DIST, N, 3, 0.3, params=LEARN_PARAMS, rng=7
        )
    fresh_learn = HistogramSession(DIST, N, rng=7).learn(
        3, 0.3, params=LEARN_PARAMS
    )
    assert (
        legacy_learn.histogram.values.tobytes()
        == fresh_learn.histogram.values.tobytes()
    )
    assert legacy_learn.rounds == fresh_learn.rounds
