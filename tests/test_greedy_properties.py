"""Property-based invariants of the greedy learner.

These run with tiny explicit sample sizes (speed) over hypothesis-drawn
distributions: whatever the input, the structural invariants of the
output must hold.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy import learn_histogram
from repro.core.params import GreedyParams
from repro.distributions.base import DiscreteDistribution

TINY = GreedyParams(
    weight_sample_size=300, collision_sets=3, collision_set_size=300, rounds=3
)


@st.composite
def small_distributions(draw):
    n = draw(st.integers(min_value=4, max_value=48))
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    total = sum(weights)
    if total <= 0:
        weights = [1.0] * n
        total = float(n)
    return DiscreteDistribution(np.array(weights) / total)


@settings(max_examples=20, deadline=None)
@given(small_distributions(), st.integers(min_value=0, max_value=10))
def test_output_always_tiles_domain(dist, seed):
    """Boundaries 0..n, strictly increasing, values finite and >= 0."""
    result = learn_histogram(dist, dist.n, 2, 0.3, params=TINY, rng=seed)
    hist = result.histogram
    assert hist.boundaries[0] == 0 and hist.boundaries[-1] == dist.n
    assert np.all(np.diff(hist.boundaries) > 0)
    assert np.all(hist.values >= 0)
    assert np.all(np.isfinite(hist.values))


@settings(max_examples=20, deadline=None)
@given(small_distributions(), st.integers(min_value=0, max_value=10))
def test_filled_histogram_invariants(dist, seed):
    """Filled variant: same partition, pointwise >= the gapped one,
    total mass close to 1 (it is an empirical-weight refit)."""
    result = learn_histogram(dist, dist.n, 2, 0.3, params=TINY, rng=seed)
    gapped = result.histogram
    filled = result.filled_histogram
    assert np.array_equal(filled.boundaries, gapped.boundaries)
    assert np.all(filled.to_pmf() >= gapped.to_pmf() - 1e-15)
    assert filled.total_mass() == pytest.approx(1.0, abs=0.2)


@settings(max_examples=15, deadline=None)
@given(small_distributions(), st.integers(min_value=0, max_value=10))
def test_priority_log_always_consistent(dist, seed):
    """The reconstructed priority histogram flattens to the engine state
    for arbitrary inputs, not just the curated fixtures."""
    result = learn_histogram(dist, dist.n, 2, 0.3, params=TINY, rng=seed)
    assert np.allclose(
        result.priority_histogram.to_pmf(), result.histogram.to_pmf(), atol=1e-12
    )


@settings(max_examples=15, deadline=None)
@given(small_distributions())
def test_methods_share_structural_invariants(dist):
    """Exhaustive and fast methods obey the same output contract."""
    for method in ("fast", "exhaustive"):
        result = learn_histogram(dist, dist.n, 2, 0.3, params=TINY, rng=5, method=method)
        assert result.histogram.n == dist.n
        assert len(result.rounds) == TINY.rounds
        costs = [r.estimated_cost for r in result.rounds]
        assert all(np.isfinite(c) for c in costs)
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=30))
def test_deterministic_point_mass(position_mod):
    """A point mass is always isolated into a tiny high piece."""
    n = 32
    position = position_mod % n
    pmf = np.full(n, 0.1 / (n - 1))
    pmf[position] = 0.9 + 0.1 / (n - 1) - 0.1 / (n - 1)
    pmf = pmf / pmf.sum()
    dist = DiscreteDistribution(pmf)
    result = learn_histogram(dist, n, 2, 0.3, params=TINY, rng=1)
    others = np.delete(np.arange(n), position)
    assert result.histogram.value_at(position) > float(
        np.max(result.histogram.value_at(others))
    ) / 2
