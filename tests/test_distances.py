"""Tests for repro.distributions.distances."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distributions.base import DiscreteDistribution
from repro.distributions.distances import (
    as_pmf,
    l1_distance,
    l2_distance,
    l2_distance_squared,
    linf_distance,
    total_variation,
)
from repro.errors import InvalidDistributionError
from repro.histograms.priority import PriorityHistogram
from repro.histograms.tiling import TilingHistogram

pmf_vectors = st.lists(
    st.floats(min_value=0.01, max_value=1.0, allow_nan=False), min_size=2, max_size=16
).map(lambda w: np.array(w) / np.sum(w))


class TestAsPmf:
    def test_array_passthrough(self):
        arr = np.array([0.5, 0.5])
        assert np.array_equal(as_pmf(arr), arr)

    def test_distribution(self):
        dist = DiscreteDistribution(np.array([0.25, 0.75]))
        assert np.array_equal(as_pmf(dist), dist.pmf)

    def test_tiling_histogram(self):
        hist = TilingHistogram.uniform(4)
        assert np.allclose(as_pmf(hist), 0.25)

    def test_priority_histogram(self):
        hist = PriorityHistogram(4)
        hist.add(hist_interval(0, 2), 0.5)
        assert np.allclose(as_pmf(hist), [0.5, 0.5, 0, 0])

    def test_2d_raises(self):
        with pytest.raises(InvalidDistributionError):
            as_pmf(np.ones((2, 2)))


def hist_interval(a, b):
    from repro.histograms.intervals import Interval

    return Interval(a, b)


class TestDistances:
    def test_l1_basic(self):
        assert l1_distance([0.5, 0.5], [1.0, 0.0]) == pytest.approx(1.0)

    def test_l2_basic(self):
        assert l2_distance([0.5, 0.5], [1.0, 0.0]) == pytest.approx(np.sqrt(0.5))

    def test_l2_squared(self):
        assert l2_distance_squared([0.5, 0.5], [1.0, 0.0]) == pytest.approx(0.5)

    def test_linf_basic(self):
        assert linf_distance([0.5, 0.5], [0.9, 0.1]) == pytest.approx(0.4)

    def test_tv_is_half_l1(self):
        assert total_variation([0.5, 0.5], [1.0, 0.0]) == pytest.approx(0.5)

    def test_mismatched_domains_raise(self):
        with pytest.raises(InvalidDistributionError):
            l1_distance(np.ones(3) / 3, np.ones(4) / 4)

    def test_mixed_operand_types(self):
        dist = DiscreteDistribution(np.ones(4) / 4)
        hist = TilingHistogram.uniform(4)
        assert l1_distance(dist, hist) == pytest.approx(0.0)


class TestMetricProperties:
    @given(pmf_vectors)
    def test_identity(self, p):
        assert l1_distance(p, p) == 0.0
        assert l2_distance(p, p) == 0.0

    @given(pmf_vectors, pmf_vectors)
    def test_symmetry(self, p, q):
        if p.shape != q.shape:
            return
        assert l1_distance(p, q) == pytest.approx(l1_distance(q, p))
        assert l2_distance(p, q) == pytest.approx(l2_distance(q, p))

    @given(pmf_vectors, pmf_vectors)
    def test_norm_ordering(self, p, q):
        """linf <= l2 <= l1 for difference vectors."""
        if p.shape != q.shape:
            return
        assert linf_distance(p, q) <= l2_distance(p, q) + 1e-12
        assert l2_distance(p, q) <= l1_distance(p, q) + 1e-12

    @given(pmf_vectors)
    def test_l1_between_distributions_at_most_two(self, p):
        q = np.zeros_like(p)
        q[0] = 1.0
        assert l1_distance(p, q) <= 2.0 + 1e-12
