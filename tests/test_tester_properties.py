"""Property-based invariants of the Algorithm 2 partition search.

The binary-search partitioner is exercised with synthetic oracles
(deterministic functions of the interval), decoupling its control flow
from sampling noise.
"""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core.flatness import FlatnessResult
from repro.core.tester import flat_partition


def oracle_accept_all(start, stop):
    return FlatnessResult(True, "exact", None, None)


def oracle_max_length(max_len):
    def oracle(start, stop):
        return FlatnessResult(stop - start <= max_len, "exact", None, None)

    return oracle


def oracle_boundaries(cuts):
    """Flat iff the interval crosses no cut (an exact histogram oracle)."""

    def oracle(start, stop):
        crossed = any(start < c < stop for c in cuts)
        return FlatnessResult(not crossed, "exact", None, None)

    return oracle


class TestAcceptAll:
    @given(st.integers(min_value=1, max_value=2000))
    def test_single_interval_suffices(self, n):
        partition, queries = flat_partition(n, 1, oracle_accept_all)
        assert len(partition) == 1
        assert partition[0].start == 0 and partition[0].stop == n
        # binary search costs ceil(log2(n)) + O(1) queries
        assert len(queries) <= math.ceil(math.log2(n)) + 2


class TestMaxLengthOracle:
    @given(
        st.integers(min_value=4, max_value=500),
        st.integers(min_value=1, max_value=64),
    )
    def test_greedy_takes_maximal_pieces(self, n, max_len):
        """With a length-threshold oracle each committed piece is as long
        as allowed, so ceil(n / max_len) pieces cover the domain."""
        needed = math.ceil(n / max_len)
        partition, _ = flat_partition(n, needed, oracle_max_length(max_len))
        assert partition[-1].stop == n
        assert len(partition) == needed
        assert all(piece.length <= max_len for piece in partition)

    @given(
        st.integers(min_value=16, max_value=500),
        st.integers(min_value=1, max_value=7),
    )
    def test_insufficient_budget_fails(self, n, max_len):
        needed = math.ceil(n / max_len)
        partition, _ = flat_partition(n, needed - 1, oracle_max_length(max_len))
        assert not partition or partition[-1].stop < n


class TestHistogramOracle:
    @given(
        st.integers(min_value=8, max_value=300),
        st.sets(st.integers(min_value=1, max_value=299), max_size=6),
    )
    def test_recovers_exact_boundaries(self, n, raw_cuts):
        cuts = sorted(c for c in raw_cuts if c < n)
        partition, _ = flat_partition(n, len(cuts) + 1, oracle_boundaries(cuts))
        assert partition[-1].stop == n
        assert len(partition) == len(cuts) + 1
        found = [piece.stop for piece in partition[:-1]]
        assert found == cuts

    @given(
        st.integers(min_value=8, max_value=300),
        st.sets(st.integers(min_value=1, max_value=299), min_size=2, max_size=6),
    )
    def test_partition_contiguous_even_on_failure(self, n, raw_cuts):
        cuts = sorted(c for c in raw_cuts if c < n)
        if not cuts:
            return
        partition, _ = flat_partition(n, 1, oracle_boundaries(cuts))
        cursor = 0
        for piece in partition:
            assert piece.start == cursor
            cursor = piece.stop


class TestQueryBudget:
    @given(
        st.integers(min_value=8, max_value=2000),
        st.integers(min_value=1, max_value=8),
    )
    def test_query_count_k_log_n(self, n, k):
        """Algorithm 2 makes O(k log n) flatness queries."""
        cuts = [i * n // k for i in range(1, k)]
        cuts = sorted(set(c for c in cuts if 0 < c < n))
        _, queries = flat_partition(n, len(cuts) + 1, oracle_boundaries(cuts))
        assert len(queries) <= (len(cuts) + 1) * (math.ceil(math.log2(n)) + 2)
