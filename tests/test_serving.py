"""The serving layer: coalescing conformance, backpressure, lifecycle.

The binding contract (README.md, "Serving"): for ANY admission-window
shape — ``max_batch``, ``max_linger_us``, ``workers`` — the canonical
response trace of a replayed workload is byte-identical to
request-at-a-time serving (``max_batch=1``) of the same admission
order.  The lockstep conformance tests pin that, error paths included;
the rest of the file covers the service's own machinery: admission
backpressure (``OverloadedError`` + retry-after), graceful drain,
abandon-on-close, the request/response taxonomy, and the executor the
service owns.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceededError,
    InvalidParameterError,
    OverloadedError,
    ReproError,
    ServiceClosedError,
)
from repro.serving import (
    HistogramService,
    Request,
    ServiceConfig,
    WorkloadConfig,
    WorkloadGenerator,
    canonical,
    error_code,
    replay,
)
from repro.utils.faults import FaultPlan

N, K, EPSILON = 256, 4, 0.35
REFERENCE = np.full(N, 1.0 / N)


def mixed_workload(**overrides) -> WorkloadConfig:
    """A small trace exercising every op, both norms, chains, storms."""
    settings = dict(
        streams=6,
        requests=80,
        seed=3,
        n=N,
        k=K,
        epsilon=EPSILON,
        mix=(
            ("ingest", 4.0),
            ("test", 3.0),
            ("selectivity", 2.0),
            ("learn", 0.5),
            ("min_k", 1.0),
            ("uniformity", 0.5),
            ("identity", 0.5),
        ),
        l1_fraction=0.3,
        chain_after_test=0.4,
        burst_every=32,
        burst_len=12,
        ingest_batch=12,
    )
    settings.update(overrides)
    return WorkloadConfig(**settings)


def build_service(
    names,
    *,
    max_batch,
    linger_us,
    workers=1,
    faults=None,
    max_respawns=None,
    cache_capacity=None,
):
    config_kwargs = dict(
        max_batch=max_batch, max_linger_us=linger_us, max_queue=2048
    )
    if cache_capacity is not None:
        config_kwargs["cache_capacity"] = cache_capacity
    return HistogramService(
        names,
        N,
        K,
        EPSILON,
        config=ServiceConfig(**config_kwargs),
        references={"baseline": REFERENCE},
        workers=workers,
        faults=faults,
        max_respawns=max_respawns,
        reservoir_capacity=N,
        rng=7,
    )


def replay_canonical(
    config,
    *,
    max_batch,
    linger_us,
    workers=1,
    clients=24,
    faults=None,
    max_respawns=None,
    cache_capacity=None,
    health_sink=None,
):
    """Replay ``config``'s trace; return the canonical response trace."""
    generator = WorkloadGenerator(config)
    trace = generator.trace()

    async def run():
        service = build_service(
            generator.stream_names,
            max_batch=max_batch,
            linger_us=linger_us,
            workers=workers,
            faults=faults,
            max_respawns=max_respawns,
            cache_capacity=cache_capacity,
        )
        async with service:
            report = await replay(service, trace, clients=clients, collect=True)
            if health_sink is not None:
                health_sink.append(service.health())
        return report

    report = asyncio.run(run())
    assert report.rejected == 0  # max_queue is sized to the whole trace
    assert len(report.responses) == len(trace)
    return tuple(canonical(response) for response in report.responses)


class TestCoalescingConformance:
    """Coalesced serving == request-at-a-time, byte for byte."""

    def test_window_shapes_match_serial(self):
        config = mixed_workload()
        reference = replay_canonical(config, max_batch=1, linger_us=0.0)
        for max_batch, linger_us in ((4, 0.0), (7, 300.0), (24, 500.0), (96, 1000.0)):
            trace = replay_canonical(
                config, max_batch=max_batch, linger_us=linger_us
            )
            assert trace == reference, (max_batch, linger_us)

    def test_no_warmup_error_paths_match_serial(self):
        # Without warmup (and without storms, whose ingest wave would
        # cover every stream up front), early probes hit quiet streams:
        # the structured empty-stream errors must coalesce identically.
        config = mixed_workload(warmup=False, burst_len=0, requests=60, seed=11)
        reference = replay_canonical(config, max_batch=1, linger_us=0.0)
        errors = [entry for entry in reference if entry[1][0] == ("ok", False)]
        assert errors  # the workload does exercise the error path
        trace = replay_canonical(config, max_batch=16, linger_us=400.0)
        assert trace == reference

    def test_parallel_executor_matches_serial(self):
        config = mixed_workload(requests=40, seed=5)
        reference = replay_canonical(config, max_batch=1, linger_us=0.0)
        trace = replay_canonical(config, max_batch=16, linger_us=400.0, workers=2)
        assert trace == reference

    def test_coalescing_actually_batches(self):
        config = mixed_workload()
        generator = WorkloadGenerator(config)
        trace = generator.trace()

        async def run():
            service = build_service(
                generator.stream_names, max_batch=64, linger_us=500.0
            )
            async with service:
                await replay(service, trace, clients=24)
            return service.stats

        stats = asyncio.run(run())
        assert stats["served"] == len(trace)
        assert stats["batches"] < len(trace)  # windows really folded
        assert stats["largest_batch"] > 1
        assert stats["coalesced"] > 0


class TestResponseCache:
    """The generation-keyed response cache: hits are byte-identical,
    mutations fence and invalidate, capacity bounds entries."""

    def test_cache_on_matches_cache_off_byte_identically(self):
        # The acceptance criterion: for a requery-heavy workload, every
        # response byte is independent of whether the cache served it.
        config = mixed_workload(requery_bias=0.6, requests=100, seed=21)
        reference = replay_canonical(
            config, max_batch=1, linger_us=0.0, cache_capacity=0
        )
        for max_batch, linger_us in ((1, 0.0), (16, 400.0), (96, 1000.0)):
            trace = replay_canonical(
                config, max_batch=max_batch, linger_us=linger_us
            )
            assert trace == reference, (max_batch, linger_us)

    def test_repeat_probe_hits_and_mutation_invalidates(self):
        async def run():
            service = build_service(["a", "b"], max_batch=8, linger_us=0.0)
            async with service:
                await service.submit(Request.ingest("a", list(range(32))))
                first = await service.submit(Request.test("a"))
                second = await service.submit(Request.test("a"))
                hits_after_repeat = service.stats["cache_hits"]
                await service.submit(Request.ingest("a", [1, 2, 3]))
                third = await service.submit(Request.test("a"))
            return first, second, third, hits_after_repeat, service.stats

        first, second, third, hits_after_repeat, stats = asyncio.run(run())
        assert first.ok and second.ok and third.ok
        assert canonical(second) == canonical(first)
        assert hits_after_repeat == 1
        # The post-ingest probe re-executed: its generation key moved.
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] >= 2

    def test_pending_mutation_fences_cached_reads(self):
        async def run():
            service = build_service(["a"], max_batch=8, linger_us=0.0)
            async with service:
                await service.submit(Request.ingest("a", list(range(32))))
                await service.submit(Request.test("a"))
                repeat = await service.submit(Request.test("a"))
                assert repeat.ok and service.stats["cache_hits"] == 1
                lookups_before = (
                    service.stats["cache_hits"] + service.stats["cache_misses"]
                )
                loop = asyncio.get_running_loop()
                ingest = loop.create_task(
                    service.submit(Request.ingest("a", [5, 6, 7]))
                )
                await asyncio.sleep(0)  # ingest enqueued: fence armed
                fenced = await service.submit(Request.test("a"))
                await ingest
                assert not service._pending_mutations  # fence released
            return fenced, lookups_before, service.stats

        fenced, lookups_before, stats = asyncio.run(run())
        assert fenced.ok
        # The fenced probe skipped the cache entirely: neither a hit nor
        # a miss was counted, and it executed after the ingest.
        assert stats["cache_hits"] + stats["cache_misses"] == lookups_before

    def test_capacity_zero_disables_the_cache(self):
        async def run():
            service = build_service(
                ["a"], max_batch=4, linger_us=0.0, cache_capacity=0
            )
            async with service:
                await service.submit(Request.ingest("a", list(range(32))))
                await service.submit(Request.test("a"))
                await service.submit(Request.test("a"))
            return service.stats

        stats = asyncio.run(run())
        assert stats["cache_hits"] == 0 and stats["cache_misses"] == 0

    def test_lru_eviction_bounds_entries(self):
        async def run():
            service = build_service(
                ["a"], max_batch=4, linger_us=0.0, cache_capacity=2
            )
            async with service:
                await service.submit(Request.ingest("a", list(range(32))))
                for start in (0, 8, 16):
                    await service.submit(Request.selectivity("a", start, start + 4))
                assert len(service._cache) == 2
                # The oldest range was evicted: re-probing it misses.
                hits = service.stats["cache_hits"]
                await service.submit(Request.selectivity("a", 0, 4))
                assert service.stats["cache_hits"] == hits
            return service.stats

        asyncio.run(run())

    def test_health_reports_generations(self):
        async def run():
            service = build_service(["a", "b"], max_batch=4, linger_us=0.0)
            async with service:
                before = service.health()["generations"]
                await service.submit(Request.ingest("a", list(range(16))))
                after = service.health()["generations"]
            return before, after

        before, after = asyncio.run(run())
        assert len(before) == len(after) == 2
        assert after[0] > before[0]  # the ingested member moved
        assert after[1] == before[1]  # the quiet member did not


@pytest.mark.shm_guard
class TestChaosConformance:
    """Worker kills mid-replay must not change a byte of any answer.

    The acceptance criterion of the fault-tolerance PR: a service whose
    pool workers are killed by a pinned
    :class:`~repro.utils.faults.FaultPlan` — healed by respawns, or
    driven all the way down the ladder to inline degradation — returns
    responses byte-identical to a fault-free ``workers=1`` run of the
    same admission order.
    """

    def test_worker_kills_heal_byte_identically(self):
        config = mixed_workload(requests=40, seed=5)
        reference = replay_canonical(config, max_batch=1, linger_us=0.0)
        health_sink: list = []
        trace = replay_canonical(
            config,
            max_batch=16,
            linger_us=400.0,
            workers=2,
            faults=FaultPlan(kill_at=[0], kill_every=40, kill_limit=3),
            max_respawns=8,
            health_sink=health_sink,
        )
        assert trace == reference
        executor = health_sink[0]["executor"]
        assert executor["worker_crashes"] >= 1  # chaos really fired
        assert executor["respawns"] >= 1
        assert not executor["degraded"]

    def test_degraded_service_matches_serial(self):
        config = mixed_workload(requests=40, seed=5)
        reference = replay_canonical(config, max_batch=1, linger_us=0.0)
        health_sink: list = []
        trace = replay_canonical(
            config,
            max_batch=16,
            linger_us=400.0,
            workers=2,
            faults=FaultPlan(kill_every=1),  # every attempt dies
            max_respawns=1,
            health_sink=health_sink,
        )
        assert trace == reference
        executor = health_sink[0]["executor"]
        assert executor["degraded"] and not executor["parallel"]
        assert [e["kind"] for e in executor["events"]][-1] == "degraded"


class TestDeadlines:
    def test_spent_budget_rejected_at_admission(self):
        async def run():
            service = build_service(["a"], max_batch=4, linger_us=0.0)
            async with service:
                response = await service.submit(
                    Request.test("a").with_deadline(0)
                )
            return response, service.stats

        response, stats = asyncio.run(run())
        assert not response.ok
        assert response.error_code == "deadline_exceeded"
        assert stats["deadline_hits"] == 1 and stats["served"] == 1

    def test_generous_budget_is_served(self):
        async def run():
            service = build_service(["a"], max_batch=4, linger_us=0.0)
            async with service:
                await service.submit(
                    Request.ingest("a", np.arange(32) % N)
                )
                response = await service.submit(
                    Request.learn("a").with_deadline(3_600_000)
                )
            return response, service.stats

        response, stats = asyncio.run(run())
        assert response.ok
        assert stats["deadline_hits"] == 0

    def test_queued_request_ages_out_before_execution(self):
        # Deterministic pre-execution expiry: hand the collector's
        # window path an entry whose absolute deadline already passed.
        async def run():
            service = build_service(["a"], max_batch=4, linger_us=0.0)
            async with service:
                await service.submit(Request.ingest("a", np.arange(32) % N))
                loop = asyncio.get_running_loop()
                expired = loop.create_future()
                live = loop.create_future()
                service._serve_window(
                    [
                        (
                            Request.learn("a").with_deadline(5.0),
                            expired,
                            loop.time() - 1.0,
                        ),
                        (Request.learn("a"), live, None),
                    ]
                )
                return await expired, await live, service.stats

        expired, live, stats = asyncio.run(run())
        assert not expired.ok and expired.error_code == "deadline_exceeded"
        assert "resubmit" in expired.error[1]
        assert live.ok
        assert stats["deadline_hits"] == 1

    def test_invalid_budgets_are_structured_errors(self):
        import dataclasses

        async def run():
            service = build_service(["a"], max_batch=4, linger_us=0.0)
            responses = []
            async with service:
                for bad in (-5.0, float("nan"), float("inf")):
                    responses.append(
                        await service.submit(
                            dataclasses.replace(
                                Request.learn("a"), deadline_ms=bad
                            )
                        )
                    )
            return responses

        for response in asyncio.run(run()):
            assert response.error_code == "invalid_parameter"
            assert "deadline_ms" in response.error[1]

    def test_with_deadline_validates_and_signature_ignores_it(self):
        request = Request.test("a", norm="l2")
        stamped = request.with_deadline(250.0)
        assert stamped.deadline_ms == 250.0
        assert stamped.signature == request.signature
        assert stamped.with_deadline(None).deadline_ms is None
        with pytest.raises(InvalidParameterError):
            request.with_deadline(-1.0)
        with pytest.raises(InvalidParameterError):
            request.with_deadline(float("inf"))
        assert error_code(DeadlineExceededError("x")) == "deadline_exceeded"

    def test_workload_config_stamps_deadlines(self):
        config = mixed_workload(requests=20, deadline_ms=500.0)
        trace = WorkloadGenerator(config).trace()
        warmup = config.streams
        assert all(
            request.deadline_ms is None for _, request in trace[:warmup]
        )
        assert all(
            request.deadline_ms == 500.0 for _, request in trace[warmup:]
        )


class TestHealthSurface:
    def test_health_reports_service_and_executor(self):
        async def run():
            service = build_service(
                ["a", "b"], max_batch=4, linger_us=0.0, workers=2
            )
            async with service:
                await service.submit(Request.ingest("a", np.arange(16) % N))
                return service.health()

        health = asyncio.run(run())
        assert health["streams"] == 2 and health["accepting"]
        assert health["stats"]["served"] == 1
        executor = health["executor"]
        assert executor["workers"] == 2 and not executor["degraded"]
        assert executor["worker_crashes"] == 0

    def test_serial_service_has_no_executor_health(self):
        async def run():
            service = build_service(["a"], max_batch=1, linger_us=0.0)
            async with service:
                return service.health()

        assert asyncio.run(run())["executor"] is None

    def test_fault_knobs_require_an_owned_executor(self):
        with pytest.raises(InvalidParameterError):
            build_service(["a"], max_batch=1, linger_us=0.0, faults=FaultPlan())
        with pytest.raises(InvalidParameterError):
            build_service(["a"], max_batch=1, linger_us=0.0, max_respawns=3)


class TestAdmission:
    def test_unknown_stream_is_a_structured_error(self):
        async def run():
            service = build_service(["a", "b"], max_batch=4, linger_us=0.0)
            async with service:
                return await service.submit(Request.test("nope"))

        response = asyncio.run(run())
        assert not response.ok
        assert response.error_code == "unknown_stream"
        assert "nope" in response.error[1]

    def test_overload_rejects_with_retry_after(self):
        async def run():
            service = HistogramService(
                ["a"],
                N,
                K,
                config=ServiceConfig(
                    max_batch=1, max_linger_us=0.0, max_queue=1, retry_after_s=0.25
                ),
                reservoir_capacity=N,
                rng=1,
            )
            async with service:
                # Tasks enqueue before the collector runs: with a
                # one-deep queue everyone past the first is rejected.
                request = Request.ingest("a", [1, 2, 3])
                tasks = [
                    asyncio.get_running_loop().create_task(service.submit(request))
                    for _ in range(6)
                ]
                results = await asyncio.gather(*tasks, return_exceptions=True)
            return results, service.stats

        results, stats = asyncio.run(run())
        rejections = [r for r in results if isinstance(r, OverloadedError)]
        served = [r for r in results if not isinstance(r, BaseException)]
        assert rejections and served
        assert all(r.retry_after == 0.25 for r in rejections)
        assert error_code(rejections[0]) == "overloaded"
        assert stats["rejected"] == len(rejections)

    def test_hand_built_bogus_op_rejected_at_admission(self):
        # A raw Request with an op the taxonomy doesn't know must come
        # back as a structured error, not poison the coalescer.
        async def run():
            service = build_service(["a"], max_batch=4, linger_us=0.0)
            async with service:
                bogus = await service.submit(Request(op="transmogrify", stream="a"))
                ok = await service.submit(Request.ingest("a", [1]))
            return bogus, ok

        bogus, ok = asyncio.run(run())
        assert bogus.error_code == "invalid_parameter"
        assert "transmogrify" in bogus.error[1]
        assert ok.ok  # the service survived

    def test_non_library_failures_crash_loudly(self):
        # A reference registered as garbage blows up inside the fleet
        # op itself — a programming error, so it propagates unmapped
        # instead of hiding behind an "internal" response.
        async def run():
            service = build_service(["a"], max_batch=4, linger_us=0.0)
            service.register_reference("garbage", "not a distribution")
            async with service:
                await service.submit(Request.ingest("a", [1, 2, 3, 4]))
                with pytest.raises(Exception) as excinfo:
                    await service.submit(Request.identity("a", "garbage"))
                assert not isinstance(excinfo.value, ReproError)

        try:
            asyncio.run(run())
        except Exception as exc:  # close() re-raises the collector crash
            assert not isinstance(exc, ReproError)

    def test_empty_stream_probe_is_structured(self):
        async def run():
            service = build_service(["a", "b"], max_batch=4, linger_us=0.0)
            async with service:
                return await service.submit(Request.min_k("a"))

        response = asyncio.run(run())
        assert not response.ok
        assert response.error_code == "empty_stream"
        assert "'a'" in response.error[1]

    def test_bad_ingest_batch_maps_with_stream_context(self):
        async def run():
            service = build_service(["a", "b"], max_batch=4, linger_us=0.0)
            async with service:
                floats = await service.submit(Request.ingest("b", [0.5, 1.5]))
                out_of_range = await service.submit(Request.ingest("b", [1, N]))
                ok = await service.submit(Request.ingest("b", [1, 2]))
            return floats, out_of_range, ok

        floats, out_of_range, ok = asyncio.run(run())
        assert floats.error_code == "invalid_parameter"
        assert "dtype" in floats.error[1]
        assert out_of_range.error_code == "invalid_parameter"
        assert "outside the domain" in out_of_range.error[1]
        assert ok.ok and ok.result == 2

    def test_unknown_identity_reference_is_structured(self):
        async def run():
            service = build_service(["a"], max_batch=4, linger_us=0.0)
            async with service:
                await service.submit(Request.ingest("a", [1, 2, 3, 4]))
                return await service.submit(Request.identity("a", "mystery"))

        response = asyncio.run(run())
        assert response.error_code == "invalid_parameter"
        assert "mystery" in response.error[1]

    def test_selectivity_range_validated_per_request(self):
        async def run():
            service = build_service(["a"], max_batch=4, linger_us=0.0)
            async with service:
                await service.submit(Request.ingest("a", [1, 2, 3, 4]))
                bad = await service.submit(Request.selectivity("a", 5, N + 9))
                good = await service.submit(Request.selectivity("a", 0, N))
            return bad, good

        bad, good = asyncio.run(run())
        assert bad.error_code == "invalid_parameter"
        assert good.ok and good.result == pytest.approx(1.0)


class TestBatchErrorPaths:
    def test_member_independent_error_fails_the_whole_batch(self):
        # k=0 passes every per-request pre-check; the shared fleet op
        # itself rejects it, and every pending request in the batch
        # gets the same structured error a singleton would.
        async def run():
            service = build_service(["a", "b"], max_batch=8, linger_us=0.0)
            async with service:
                await service.submit(Request.ingest("a", [1, 2, 3, 4]))
                return await service.submit(Request.test("a", k=0))

        response = asyncio.run(run())
        assert response.error_code == "invalid_parameter"

    def test_empty_ingest_batch_is_served(self):
        async def run():
            service = build_service(["a"], max_batch=4, linger_us=0.0)
            async with service:
                return await service.submit(Request.ingest("a", []))

        response = asyncio.run(run())
        assert response.ok and response.result == 0

    def test_introspection_surface(self):
        service = build_service(["a", "b"], max_batch=4, linger_us=0.0)
        assert service.streams == ["a", "b"]
        assert service.config.max_batch == 4
        assert service.maintainer.fleet_size == 2
        assert service.stats["submitted"] == 0
        service.register_reference("extra", REFERENCE)

        async def run():
            async with service:
                await service.submit(Request.ingest("a", [1, 2, 3, 4]))
                return await service.submit(Request.identity("a", "extra"))

        assert asyncio.run(run()).ok


class TestLifecycle:
    def test_drain_serves_backlog_then_refuses(self):
        async def run():
            service = build_service(["a", "b"], max_batch=8, linger_us=0.0)
            await service.start()
            loop = asyncio.get_running_loop()
            tasks = [
                loop.create_task(service.submit(Request.ingest("a", [i])))
                for i in range(5)
            ]
            await asyncio.sleep(0)  # let every task enqueue
            await service.close(drain=True)
            drained = await asyncio.gather(*tasks)
            with pytest.raises(ServiceClosedError):
                await service.submit(Request.ingest("a", [1]))
            return drained

        drained = asyncio.run(run())
        assert all(response.ok for response in drained)

    def test_abandon_fails_pending(self):
        async def run():
            service = build_service(["a"], max_batch=8, linger_us=0.0)
            await service.start()
            loop = asyncio.get_running_loop()
            tasks = [
                loop.create_task(service.submit(Request.ingest("a", [i])))
                for i in range(4)
            ]
            await asyncio.sleep(0)  # enqueue, but never run the collector
            await service.close(drain=False)
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(run())
        assert all(isinstance(r, ServiceClosedError) for r in results)

    def test_close_is_idempotent_and_closes_owned_executor(self):
        async def run():
            service = build_service(
                ["a", "b"], max_batch=4, linger_us=0.0, workers=2
            )
            async with service:
                await service.submit(Request.ingest("a", list(range(16))))
                response = await service.submit(Request.test("a"))
            executor = service._executor
            await service.close()  # second close: no-op
            return response, executor

        response, executor = asyncio.run(run())
        assert response.ok
        assert executor._closed

    def test_double_start_rejected(self):
        async def run():
            service = build_service(["a"], max_batch=1, linger_us=0.0)
            async with service:
                with pytest.raises(InvalidParameterError):
                    await service.start()

        asyncio.run(run())

    def test_submit_before_start_refused(self):
        async def run():
            service = build_service(["a"], max_batch=1, linger_us=0.0)
            with pytest.raises(ServiceClosedError):
                await service.submit(Request.test("a"))

        asyncio.run(run())


class TestRequestShapes:
    def test_signatures_split_operating_points_not_payloads(self):
        assert (
            Request.ingest("a", [1, 2]).signature
            == Request.ingest("b", [3]).signature
        )
        assert (
            Request.selectivity("a", 0, 5).signature
            == Request.selectivity("b", 9, 12).signature
        )
        assert Request.test("a").signature == Request.test("b").signature
        assert Request.test("a", norm="l1").signature != Request.test("a").signature
        assert Request.test("a", k=5).signature != Request.test("a", k=6).signature
        assert (
            Request.identity("a", "p").signature
            != Request.identity("a", "q").signature
        )
        assert Request.min_k("a", max_k=4).signature != Request.min_k("a").signature
        assert Request.ingest("a", [1]).mutates
        # learn can commit the stored histogram: the service treats it
        # as a mutation (a cache fence), not a pure read.
        assert Request.learn("a").mutates
        assert not Request.test("a").mutates
        assert not Request.selectivity("a", 0, 5).mutates
        assert (
            Request.selectivity("a", 0, 5).cache_key
            != Request.selectivity("a", 0, 6).cache_key
        )
        assert Request.test("a").cache_key == Request.test("b").cache_key
        with pytest.raises(InvalidParameterError):
            _ = Request(op="transmogrify", stream="a").signature

    def test_taxonomy_rejects_foreign_exceptions(self):
        with pytest.raises(TypeError):
            error_code(ValueError("not a library error"))
        assert error_code(ReproError("x")) == "internal"

    def test_service_config_validation(self):
        with pytest.raises(InvalidParameterError):
            ServiceConfig(max_batch=0)
        with pytest.raises(InvalidParameterError):
            ServiceConfig(max_linger_us=-1.0)
        with pytest.raises(InvalidParameterError):
            ServiceConfig(max_queue=0)
        with pytest.raises(InvalidParameterError):
            ServiceConfig(retry_after_s=-0.1)
        with pytest.raises(InvalidParameterError):
            ServiceConfig(cache_capacity=-1)
        assert ServiceConfig(cache_capacity=0).cache_capacity == 0

    def test_service_constructor_validation(self):
        with pytest.raises(InvalidParameterError):
            HistogramService([], N, K)
        with pytest.raises(InvalidParameterError):
            HistogramService(["a", "a"], N, K)
        with pytest.raises(InvalidParameterError):
            HistogramService(["a"], N, K, workers=2, executor=object())

    def test_canonical_rejects_unknown_objects(self):
        with pytest.raises(TypeError):
            canonical(object())

    def test_canonical_plain_forms(self):
        assert canonical(np.int64(3)) == 3
        assert canonical(np.array([1, 2])) == ("ndarray", (2,), (1, 2))
        assert canonical({"b": 1, "a": 2}) == (("a", 2), ("b", 1))

    def test_response_retry_after_surfaces_from_the_error_triple(self):
        from repro.serving import Response

        plain = Response(ok=True, op="test", stream="a", result=1)
        assert plain.retry_after is None and plain.error_code is None
        failed = Response(
            ok=False, op="test", stream="a", error=("overloaded", "full", 0.5)
        )
        assert failed.retry_after == 0.5


class TestReplayBackpressure:
    def test_replay_retries_through_overload(self):
        config = mixed_workload(requests=40, seed=13)
        generator = WorkloadGenerator(config)
        trace = generator.trace()

        async def run():
            service = HistogramService(
                generator.stream_names,
                N,
                K,
                EPSILON,
                config=ServiceConfig(
                    max_batch=2, max_linger_us=0.0, max_queue=2,
                    retry_after_s=0.001,
                ),
                references={"baseline": REFERENCE},
                reservoir_capacity=N,
                rng=7,
            )
            async with service:
                return await replay(service, trace, clients=16, max_retries=50)

        report = asyncio.run(run())
        assert report.rejected > 0 and report.retried > 0  # queue of 2 thrashes
        assert report.ok + sum(report.error_counts.values()) == report.requests
        assert "overloaded" not in report.error_counts  # retries recovered all

    def test_replay_gives_up_after_max_retries(self):
        config = mixed_workload(requests=30, seed=17)
        generator = WorkloadGenerator(config)
        trace = generator.trace()

        async def run():
            service = HistogramService(
                generator.stream_names,
                N,
                K,
                EPSILON,
                config=ServiceConfig(
                    max_batch=1, max_linger_us=0.0, max_queue=1,
                    retry_after_s=0.0001,
                ),
                references={"baseline": REFERENCE},
                reservoir_capacity=N,
                rng=7,
            )
            async with service:
                return await replay(service, trace, clients=24, max_retries=0)

        report = asyncio.run(run())
        assert report.error_counts.get("overloaded", 0) > 0
        assert report.ok < report.requests

    def test_replay_rejects_zero_clients(self):
        async def run():
            service = build_service(["a"], max_batch=1, linger_us=0.0)
            async with service:
                with pytest.raises(InvalidParameterError):
                    await replay(service, [], clients=0)

        asyncio.run(run())


class TestCli:
    def test_repro_serve_runs_both_modes(self, capsys):
        from repro.serving.cli import main

        assert (
            main(
                [
                    "--streams", "3", "--requests", "12", "--n", "128",
                    "--k", "4", "--clients", "6", "--max-batch", "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[coalesced]" in out and "[one-at-a-time]" in out

    def test_repro_serve_no_baseline(self, capsys):
        from repro.serving.cli import main

        assert (
            main(
                [
                    "--streams", "2", "--requests", "8", "--n", "128",
                    "--k", "4", "--clients", "4", "--no-baseline",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[coalesced]" in out and "[one-at-a-time]" not in out

    @pytest.mark.shm_guard
    def test_repro_serve_chaos_mode_prints_executor_health(self, capsys):
        from repro.serving.cli import main

        assert (
            main(
                [
                    "--streams", "2", "--requests", "10", "--n", "128",
                    "--k", "4", "--clients", "4", "--no-baseline",
                    "--workers", "2", "--chaos-kill-every", "40",
                    "--chaos-kill-limit", "1", "--max-respawns", "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[coalesced+chaos]" in out
        assert "executor:" in out and "respawns" in out

    def test_repro_serve_snapshot_dir_warm_starts_second_run(
        self, capsys, tmp_path
    ):
        from repro.serving.cli import main

        args = [
            "--streams", "2", "--requests", "8", "--n", "128",
            "--k", "4", "--clients", "4",
            "--snapshot-dir", str(tmp_path), "--checkpoint-every", "1",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cold start:" in out
        assert "checkpoints:" in out
        assert "[one-at-a-time]" not in out  # snapshot dir implies no baseline
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "warm start: restored" in out

    def test_repro_serve_deadline_flag(self, capsys):
        from repro.serving.cli import main

        assert (
            main(
                [
                    "--streams", "2", "--requests", "8", "--n", "128",
                    "--k", "4", "--clients", "4", "--no-baseline",
                    "--deadline-ms", "60000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "deadline hits" in out
