"""Snapshot/restore: format round trips, corruption, crash-safety, serving.

The binding contract under test: a restored instance answers
**byte-identical** responses — verdicts, histograms, flatness query
logs, memo accounting, and future rng draws — to the live instance it
was snapshotted from; and *any* defective snapshot surfaces as a
structured :class:`~repro.errors.SnapshotError` that triggers a clean
cold rebuild, never a crash.
"""

from __future__ import annotations

import asyncio
import os
import struct

import numpy as np
import pytest

from repro.api.session import HistogramSession
from repro.core.params import GreedyParams, TesterParams
from repro.errors import InjectedFaultError, InvalidParameterError, SnapshotError
from repro.persist import format as persist_format
from repro.persist import load_snapshot, write_snapshot
from repro.serving.requests import Request, canonical, error_code
from repro.serving.service import HistogramService, ServiceConfig
from repro.streaming.fleet import FleetMaintainer
from repro.utils.faults import FaultPlan

N = 96
LEARN_PARAMS = GreedyParams(
    weight_sample_size=512, collision_sets=3, collision_set_size=256, rounds=2
)
TEST_PARAMS = TesterParams(num_sets=4, set_size=512)


# ------------------------------------------------------------------ #
# file format
# ------------------------------------------------------------------ #


class TestFormat:
    def test_round_trip_views_are_zero_copy_and_read_only(self, tmp_path):
        path = tmp_path / "demo.snap"
        first = np.arange(1000, dtype=np.int64)
        second = np.linspace(0.0, 1.0, 7).reshape(1, 7)
        write_snapshot(
            path,
            kind="demo",
            meta={"answer": 42, "pi": 3.141592653589793},
            slabs={"first": first, "second": second},
        )
        snap = load_snapshot(path, kind="demo")
        assert snap.meta == {"answer": 42, "pi": 3.141592653589793}
        assert snap.slab_names == ("first", "second")
        for name, expected in (("first", first), ("second", second)):
            view = snap.slab(name)
            assert np.array_equal(view, expected)
            assert view.dtype == expected.dtype
            assert not view.flags.writeable  # mapped read-only
            # Zero-copy: the view's buffer chain bottoms out in the
            # memmap over the snapshot file.
            base = view
            while getattr(base, "base", None) is not None:
                if isinstance(base, np.memmap):
                    break
                base = base.base
            assert isinstance(base, np.memmap)

    def test_missing_slab(self, tmp_path):
        path = tmp_path / "demo.snap"
        write_snapshot(path, kind="demo", meta={}, slabs={"a": np.zeros(3)})
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshot(path).slab("b")
        assert excinfo.value.reason == "missing-slab"

    @pytest.mark.parametrize(
        "corrupt, reason",
        [
            ("missing", "missing"),
            ("magic", "bad-magic"),
            ("header-truncated", "truncated"),
            ("header-garbage", "bad-header"),
            ("payload-truncated", "truncated"),
            ("payload-flipped", "checksum-mismatch"),
        ],
    )
    def test_corruption_reasons(self, tmp_path, corrupt, reason):
        path = tmp_path / "demo.snap"
        write_snapshot(
            path,
            kind="demo",
            meta={},
            slabs={"a": np.arange(1024, dtype=np.int64)},
        )
        data = bytearray(path.read_bytes())
        if corrupt == "missing":
            path.unlink()
        elif corrupt == "magic":
            data[0] ^= 0xFF
            path.write_bytes(bytes(data))
        elif corrupt == "header-truncated":
            # Claim a header longer than the file.
            data[8:16] = struct.pack("<Q", len(data))
            path.write_bytes(bytes(data))
        elif corrupt == "header-garbage":
            data[20] = 0xFF  # inside the JSON header
            path.write_bytes(bytes(data))
        elif corrupt == "payload-truncated":
            path.write_bytes(bytes(data[: len(data) - 512]))
        elif corrupt == "payload-flipped":
            data[-16] ^= 0xFF
            path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshot(path, kind="demo")
        assert excinfo.value.reason == reason

    def test_unmappable_file_is_unreadable(self, tmp_path):
        path = tmp_path / "demo.snap"
        path.write_bytes(b"")  # an empty file cannot be mmapped
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshot(path)
        assert excinfo.value.reason == "unreadable"

    @pytest.mark.parametrize(
        "spec",
        [
            {"name": "a", "dtype": "<i8"},  # missing manifest keys
            {  # nbytes inconsistent with shape * itemsize
                "name": "a",
                "dtype": "<i8",
                "shape": [4],
                "offset": 0,
                "nbytes": 7,
                "crc32": 0,
            },
        ],
        ids=["missing-keys", "inconsistent-nbytes"],
    )
    def test_malformed_slab_manifest(self, tmp_path, spec):
        import json

        path = tmp_path / "demo.snap"
        header = json.dumps(
            {
                "format_version": persist_format.FORMAT_VERSION,
                "kind": "demo",
                "meta": {},
                "slabs": [spec],
            }
        ).encode()
        path.write_bytes(
            persist_format.MAGIC
            + struct.pack("<Q", len(header))
            + header
            + b"\0" * 8192
        )
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshot(path, kind="demo")
        assert excinfo.value.reason == "bad-header"

    def test_version_mismatch(self, tmp_path, monkeypatch):
        path = tmp_path / "demo.snap"
        monkeypatch.setattr(persist_format, "FORMAT_VERSION", 999)
        write_snapshot(path, kind="demo", meta={}, slabs={})
        monkeypatch.undo()
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshot(path)
        assert excinfo.value.reason == "version-mismatch"

    def test_kind_mismatch(self, tmp_path):
        path = tmp_path / "demo.snap"
        write_snapshot(path, kind="fleet", meta={}, slabs={})
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshot(path, kind="service")
        assert excinfo.value.reason == "kind-mismatch"

    def test_snapshot_error_taxonomy_code(self):
        assert error_code(SnapshotError("x", reason="missing")) == "snapshot_error"


# ------------------------------------------------------------------ #
# differential snapshots (format v2)
# ------------------------------------------------------------------ #


def _delta_header(path):
    header, _ = persist_format._read_header(os.fspath(path))
    return header


class TestDifferentialFormat:
    A = np.arange(512, dtype=np.int64)
    B = np.linspace(0.0, 1.0, 33)

    def _base(self, tmp_path):
        base = tmp_path / "base.snap"
        write_snapshot(
            base, kind="demo", meta={"gen": 1}, slabs={"a": self.A, "b": self.B}
        )
        return base

    def test_delta_round_trip_resolves_parent_refs(self, tmp_path):
        base = self._base(tmp_path)
        delta = tmp_path / "delta.snap"
        b2 = self.B * 2.0
        write_snapshot(
            delta,
            kind="demo",
            meta={"gen": 2},
            slabs={"b": b2},
            parent=base,
            unchanged=["a"],
        )
        snap = load_snapshot(delta, kind="demo")
        assert snap.meta == {"gen": 2}
        assert snap.parent == "base.snap" and snap.depth == 1
        assert np.array_equal(snap.slab("a"), self.A)
        assert np.array_equal(snap.slab("b"), b2)
        assert not snap.slab("a").flags.writeable
        # Only the changed payload was re-written.
        assert os.path.getsize(delta) < os.path.getsize(base)

    def test_refs_to_refs_flatten_to_the_owning_file(self, tmp_path):
        base = self._base(tmp_path)
        first = tmp_path / "first.snap"
        second = tmp_path / "second.snap"
        write_snapshot(
            first,
            kind="demo",
            meta={},
            slabs={"b": self.B * 3.0},
            parent=base,
            unchanged=["a"],
        )
        write_snapshot(
            second,
            kind="demo",
            meta={},
            slabs={},
            parent=first,
            unchanged=["a", "b"],
        )
        refs = {
            spec["name"]: spec["ref"][0]
            for spec in _delta_header(second)["slabs"]
            if "ref" in spec
        }
        # "a" chains through first but its reference points straight at
        # the base file: resolution is always one hop.
        assert refs == {"a": "base.snap", "b": "first.snap"}
        snap = load_snapshot(second, kind="demo")
        assert np.array_equal(snap.slab("a"), self.A)
        assert np.array_equal(snap.slab("b"), self.B * 3.0)

    def test_unknown_unchanged_name_is_missing_slab(self, tmp_path):
        base = self._base(tmp_path)
        with pytest.raises(SnapshotError) as excinfo:
            write_snapshot(
                tmp_path / "delta.snap",
                kind="demo",
                meta={},
                slabs={},
                parent=base,
                unchanged=["zzz"],
            )
        assert excinfo.value.reason == "missing-slab"

    def test_unchanged_without_parent_is_missing_slab(self, tmp_path):
        with pytest.raises(SnapshotError) as excinfo:
            write_snapshot(
                tmp_path / "delta.snap",
                kind="demo",
                meta={},
                slabs={},
                unchanged=["a"],
            )
        assert excinfo.value.reason == "missing-slab"

    @pytest.mark.parametrize(
        "corrupt, reason",
        [
            ("missing", "missing"),
            ("magic", "bad-magic"),
            ("payload-flipped", "checksum-mismatch"),
            ("kind", "kind-mismatch"),
            ("truncated", "truncated"),
        ],
    )
    def test_parent_corruption_fires_per_link(self, tmp_path, corrupt, reason):
        base = self._base(tmp_path)
        delta = tmp_path / "delta.snap"
        write_snapshot(
            delta,
            kind="demo",
            meta={},
            slabs={"b": self.B},
            parent=base,
            unchanged=["a"],
        )
        if corrupt == "missing":
            base.unlink()
        elif corrupt == "magic":
            data = bytearray(base.read_bytes())
            data[0] ^= 0xFF
            base.write_bytes(bytes(data))
        elif corrupt == "payload-flipped":
            data = bytearray(base.read_bytes())
            data[4096 + 100] ^= 0xFF  # inside slab "a", the referenced one
            base.write_bytes(bytes(data))
        elif corrupt == "kind":
            write_snapshot(
                base, kind="other", meta={}, slabs={"a": self.A, "b": self.B}
            )
        elif corrupt == "truncated":
            base.write_bytes(base.read_bytes()[:4100])
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshot(delta, kind="demo")
        assert excinfo.value.reason == reason

    def test_writer_refuses_a_chain_past_the_bound(self, tmp_path):
        parent = self._base(tmp_path)
        for link in range(persist_format.MAX_CHAIN):
            child = tmp_path / f"link-{link}.snap"
            write_snapshot(
                child,
                kind="demo",
                meta={},
                slabs={"b": self.B},
                parent=parent,
                unchanged=["a"],
            )
            parent = child
        assert _delta_header(parent)["depth"] == persist_format.MAX_CHAIN
        with pytest.raises(SnapshotError) as excinfo:
            write_snapshot(
                tmp_path / "too-deep.snap",
                kind="demo",
                meta={},
                slabs={},
                parent=parent,
                unchanged=["a"],
            )
        assert excinfo.value.reason == "chain-too-deep"

    def _handcrafted(self, tmp_path, header_doc):
        import json

        path = tmp_path / "crafted.snap"
        header = json.dumps(header_doc).encode()
        path.write_bytes(
            persist_format.MAGIC + struct.pack("<Q", len(header)) + header
        )
        return path

    def test_loader_rejects_a_forged_deep_chain(self, tmp_path):
        path = self._handcrafted(
            tmp_path,
            {
                "format_version": persist_format.FORMAT_VERSION,
                "kind": "demo",
                "meta": {},
                "slabs": [],
                "parent": "base.snap",
                "depth": persist_format.MAX_CHAIN + 1,
            },
        )
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshot(path, kind="demo")
        assert excinfo.value.reason == "chain-too-deep"

    @pytest.mark.parametrize("parent", ["../evil.snap", "", "a/b.snap", ".."])
    def test_loader_rejects_traversal_in_link_names(self, tmp_path, parent):
        path = self._handcrafted(
            tmp_path,
            {
                "format_version": persist_format.FORMAT_VERSION,
                "kind": "demo",
                "meta": {},
                "slabs": [],
                "parent": parent,
                "depth": 1,
            },
        )
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshot(path, kind="demo")
        assert excinfo.value.reason == "bad-header"

    def test_v1_files_still_read(self, tmp_path, monkeypatch):
        path = tmp_path / "old.snap"
        monkeypatch.setattr(persist_format, "FORMAT_VERSION", 1)
        write_snapshot(path, kind="demo", meta={"v": 1}, slabs={"a": self.A})
        monkeypatch.undo()
        snap = load_snapshot(path, kind="demo")
        assert snap.meta == {"v": 1}
        assert snap.parent is None and snap.depth == 0
        assert np.array_equal(snap.slab("a"), self.A)


# ------------------------------------------------------------------ #
# crash-safety
# ------------------------------------------------------------------ #


class TestCrashSafety:
    def test_crash_mid_write_keeps_previous_generation(self, tmp_path, monkeypatch):
        """A kill during the fsync of generation 2 leaves generation 1."""
        path = tmp_path / "state.snap"
        write_snapshot(
            path,
            kind="demo",
            meta={"generation": 1},
            slabs={"a": np.arange(256, dtype=np.int64)},
        )
        plan = FaultPlan(kill_at=[1])  # second write attempt dies
        real_sync = persist_format._sync_file

        def chaotic_sync(handle):
            (directive,) = plan.task_directives(1)
            if directive is not None:
                raise InjectedFaultError("injected crash mid-checkpoint")
            real_sync(handle)

        monkeypatch.setattr(persist_format, "_sync_file", chaotic_sync)
        write_snapshot(path, kind="demo", meta={"generation": 2}, slabs={})
        with pytest.raises(InjectedFaultError):
            write_snapshot(path, kind="demo", meta={"generation": 3}, slabs={})
        snap = load_snapshot(path, kind="demo")
        # The file is the last *completed* generation, not the torn one.
        assert snap.meta == {"generation": 2}
        assert plan.injected["kills"] == 1

    def test_truncated_snapshot_restores_cold(self, tmp_path):
        """Restore of a half-written file degrades, never crashes."""
        maintainer = _built_maintainer(seed=3)
        path = tmp_path / "m.snap"
        maintainer.snapshot(path)
        path.write_bytes(path.read_bytes()[: os.path.getsize(path) // 2])
        fresh = _fresh_maintainer(seed=3)
        with pytest.raises(SnapshotError) as excinfo:
            fresh.restore(path)
        assert excinfo.value.reason in ("truncated", "checksum-mismatch")


# ------------------------------------------------------------------ #
# layer round trips
# ------------------------------------------------------------------ #


def _ingest(maintainer: FleetMaintainer, seed: int) -> None:
    rng = np.random.default_rng(seed)
    for f in range(maintainer.fleet_size):
        maintainer.update_many(f, rng.integers(0, N, size=900))


def _fresh_maintainer(seed: int) -> FleetMaintainer:
    return FleetMaintainer(
        3, N, 3, 0.3, reservoir_capacity=512, params=LEARN_PARAMS, rng=11
    )


def _built_maintainer(seed: int) -> FleetMaintainer:
    maintainer = _fresh_maintainer(seed)
    _ingest(maintainer, seed)
    maintainer.test(3, 0.3, params=TEST_PARAMS)
    maintainer.learn(3, 0.3)
    return maintainer


def _freeze_probe(maintainer: FleetMaintainer):
    """Phase-B probes + memo accounting, hashable for equality checks."""
    outcome = (
        maintainer.test(4, 0.25, params=TEST_PARAMS),
        maintainer.min_k(0.3, max_k=5, params=TEST_PARAMS),
        tuple(
            (tuple(h.boundaries), tuple(h.values))
            for h in maintainer.learn(3, 0.3)
            for h in (h.histogram,)
        ),
    )
    memo = []
    for f in range(maintainer.fleet_size):
        bundle = maintainer.fleet.session(f)._bundle
        memo.append(
            sorted(
                (key, c.memo_hits, c.memo_misses, c.memo_size)
                for key, c in bundle._tester_compiled_cache.items()
            )
        )
    return outcome, memo


class TestSessionRoundTrip:
    def test_bundle_snapshot_restores_memo_and_rng(self, tmp_path):
        pmf = np.full(N, 1.0 / N)
        live = HistogramSession(pmf, N, rng=7, max_candidates=64)
        live.test_l2(3, 0.3, params=TEST_PARAMS)
        live.learn(3, 0.3, params=LEARN_PARAMS)
        path = tmp_path / "bundle.snap"
        live.snapshot(path)

        restored = HistogramSession(pmf, N, rng=12345, max_candidates=64)
        restored.restore(path)
        assert (
            restored._bundle._rng.bit_generator.state
            == live._bundle._rng.bit_generator.state
        )
        # The memoised verdict log replays: phase-B queries hit/miss in
        # the same pattern on both instances.
        a = live.test_l2(4, 0.25, params=TEST_PARAMS)
        b = restored.test_l2(4, 0.25, params=TEST_PARAMS)
        assert a == b
        live_tester = next(iter(live._bundle._tester_compiled_cache.values()))
        rest_tester = next(iter(restored._bundle._tester_compiled_cache.values()))
        assert live_tester._memo == rest_tester._memo
        assert live_tester.memo_hits == rest_tester.memo_hits
        assert live_tester.memo_misses == rest_tester.memo_misses

    def test_bundle_config_mismatch(self, tmp_path):
        pmf = np.full(N, 1.0 / N)
        live = HistogramSession(pmf, N, rng=7)
        live.test_l2(3, 0.3, params=TEST_PARAMS)
        path = tmp_path / "bundle.snap"
        live.snapshot(path)
        other = HistogramSession(np.full(2 * N, 0.5 / N), 2 * N, rng=7)
        with pytest.raises(SnapshotError) as excinfo:
            other.restore(path)
        assert excinfo.value.reason == "config-mismatch"


@pytest.mark.shm_guard
class TestMaintainerRoundTrip:
    def test_restored_maintainer_is_byte_identical(self, tmp_path):
        live = _built_maintainer(seed=3)
        path = tmp_path / "m.snap"
        live.snapshot(path)

        restored = _fresh_maintainer(seed=3)
        restored.restore(path)
        assert _freeze_probe(live) == _freeze_probe(restored)
        # Stored histograms and counters carried over too.
        assert live.items_seen == restored.items_seen
        assert live.rebuilds == restored.rebuilds
        for a, b in zip(live.histograms(), restored.histograms()):
            assert (a is None) == (b is None)
            if a is not None:
                assert np.array_equal(a.boundaries, b.boundaries)
                assert np.array_equal(a.values, b.values)

    def test_restored_maintainer_keeps_ingesting_identically(self, tmp_path):
        """Post-restore rng draws line up: further ingest stays in sync."""
        live = _built_maintainer(seed=3)
        path = tmp_path / "m.snap"
        live.snapshot(path)
        restored = _fresh_maintainer(seed=3)
        restored.restore(path)
        extra = np.arange(700) % N  # > capacity: reservoir spends rng draws
        live.update_many(0, extra)
        restored.update_many(0, extra)
        assert np.array_equal(
            live._reservoirs[0].contents(), restored._reservoirs[0].contents()
        )
        assert _freeze_probe(live) == _freeze_probe(restored)

    def test_pool_growth_never_writes_the_mapping(self, tmp_path):
        """A larger post-restore budget grows pools off the mapped file."""
        live = _built_maintainer(seed=3)
        path = tmp_path / "m.snap"
        live.snapshot(path)
        restored = _fresh_maintainer(seed=3)
        restored.restore(path)
        bigger = TesterParams(num_sets=4, set_size=700)
        assert live.test(3, 0.3, params=bigger) == restored.test(
            3, 0.3, params=bigger
        )

    def test_config_mismatch_before_any_state_is_touched(self, tmp_path):
        live = _built_maintainer(seed=3)
        path = tmp_path / "m.snap"
        live.snapshot(path)
        other = FleetMaintainer(
            3, N, 4, 0.3, reservoir_capacity=512, params=LEARN_PARAMS, rng=11
        )
        with pytest.raises(SnapshotError) as excinfo:
            other.restore(path)
        assert excinfo.value.reason == "config-mismatch"
        assert other.items_seen == [0, 0, 0]  # untouched


# ------------------------------------------------------------------ #
# service warm-start
# ------------------------------------------------------------------ #


STREAMS = ["alpha", "beta", "gamma"]


def _service(snapshot_dir, cache_capacity=256, **kwargs) -> HistogramService:
    return HistogramService(
        STREAMS,
        N,
        3,
        0.3,
        reservoir_capacity=512,
        params=LEARN_PARAMS,
        tester_params=TEST_PARAMS,
        rng=5,
        snapshot_dir=snapshot_dir,
        config=ServiceConfig(
            max_batch=8, max_linger_us=0.0, cache_capacity=cache_capacity
        ),
        **kwargs,
    )


def _delta_files(snapshot_dir) -> list:
    return sorted(
        name
        for name in os.listdir(snapshot_dir)
        if name.startswith("service-delta-") and name.endswith(".snap")
    )


def _trace(seed: int = 3):
    rng = np.random.default_rng(seed)
    ingest = [
        Request.ingest(s, rng.integers(0, N, size=700).tolist()) for s in STREAMS
    ]
    probes = [Request.test(s, 3, 0.3) for s in STREAMS]
    probes += [Request.min_k(s, 0.3, max_k=4) for s in STREAMS]
    return ingest, probes


async def _serve(service: HistogramService, requests) -> list:
    """Canonicalised ``(ok, response)`` pairs, one per request."""
    responses = []
    async with service:
        for request in requests:
            response = await service.submit(request)
            responses.append((response.ok, canonical(response)))
    return responses


@pytest.mark.shm_guard
class TestServiceWarmStart:
    def test_restarted_service_answers_byte_identically(self, tmp_path):
        async def scenario():
            ingest, probes = _trace()
            # Run A: ingest + first probes; drain-close checkpoints.
            first = _service(tmp_path)
            assert not first.warm_started
            assert first.restore_error.startswith("missing")
            await _serve(first, ingest + probes[:2])
            assert first.stats["checkpoints"] == 1
            # Reference: one uninterrupted service over the full trace.
            reference = _service(None)
            ref = await _serve(reference, ingest + probes[:2] + probes)
            # Run B: restart from the checkpoint, replay the remainder.
            second = _service(tmp_path)
            assert second.warm_started
            assert second.restore_error is None
            warm = await _serve(second, probes)
            assert warm == ref[len(ingest) + 2 :]

        asyncio.run(scenario())

    def test_corrupt_snapshot_falls_back_cold(self, tmp_path):
        async def scenario():
            ingest, probes = _trace()
            await _serve(_service(tmp_path), ingest)
            path = tmp_path / "service.snap"
            data = bytearray(path.read_bytes())
            data[-64] ^= 0xFF
            path.write_bytes(bytes(data))
            cold = _service(tmp_path)
            assert not cold.warm_started
            assert cold.restore_error.startswith("checksum-mismatch")
            # Cold service still serves (and re-checkpoints a good file).
            responses = await _serve(cold, ingest + probes[:1])
            assert all(ok for ok, _ in responses)
            assert _service(tmp_path).warm_started

        asyncio.run(scenario())

    def test_stream_rename_is_a_config_mismatch(self, tmp_path):
        async def scenario():
            ingest, _ = _trace()
            await _serve(_service(tmp_path), ingest)
            renamed = HistogramService(
                ["alpha", "beta", "delta"],
                N,
                3,
                0.3,
                reservoir_capacity=512,
                params=LEARN_PARAMS,
                rng=5,
                snapshot_dir=tmp_path,
            )
            assert not renamed.warm_started
            assert renamed.restore_error.startswith("config-mismatch")

        asyncio.run(scenario())

    def test_periodic_checkpoints_and_failure_counter(self, tmp_path, monkeypatch):
        async def scenario():
            ingest, probes = _trace()
            service = _service(tmp_path, checkpoint_every=1)
            await _serve(service, ingest + probes[:2])
            # One checkpoint per admission window plus the drain-close one.
            assert service.stats["checkpoints"] == service.stats["windows"] + 1
            assert service.stats["checkpoint_failures"] == 0

            def broken_sync(handle):
                raise OSError("disk full")

            monkeypatch.setattr(persist_format, "_sync_file", broken_sync)
            failing = _service(tmp_path, checkpoint_every=1)
            assert failing.warm_started  # restore still fine
            responses = await _serve(failing, probes[:2])
            assert all(ok for ok, _ in responses)  # serving survives
            assert failing.stats["checkpoint_failures"] > 0
            assert failing.stats["checkpoints"] == 0
            monkeypatch.undo()
            # The failed writes never clobbered the good generation.
            assert _service(tmp_path).warm_started

        asyncio.run(scenario())

    def test_checkpoint_requires_snapshot_dir(self):
        with pytest.raises(InvalidParameterError):
            _service(None, checkpoint_every=4)
        service = _service(None)
        with pytest.raises(InvalidParameterError):
            service.checkpoint()

    def test_checkpoint_every_must_be_positive(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            _service(tmp_path, checkpoint_every=0)

    def test_unchanged_windows_skip_the_checkpoint(self, tmp_path):
        """The cadence fix: repeat-read windows re-write nothing.

        With the response cache off so repeats actually reach the
        collector, windows in which no stream's generation moved must
        not re-write the snapshot; the drain-close checkpoint stays
        unconditional.
        """

        async def scenario():
            ingest, _ = _trace()
            service = _service(tmp_path, checkpoint_every=1, cache_capacity=0)
            probe = Request.test("alpha", 3, 0.3)
            async with service:
                for request in ingest:
                    await service.submit(request)
                # First probe may grow pools/compile: generation moves.
                await service.submit(probe)
                # Warm it fully: a second identical probe is pure.
                await service.submit(probe)
                watermark = service.stats["checkpoints"]
                windows_before = service.stats["windows"]
                for _ in range(4):
                    assert (await service.submit(probe)).ok
                assert service.stats["windows"] == windows_before + 4
                assert service.stats["checkpoints"] == watermark
            # Drain-close always writes one more, skip logic or not.
            assert service.stats["checkpoints"] == watermark + 1
            assert service.stats["checkpoint_failures"] == 0

        asyncio.run(scenario())


@pytest.mark.shm_guard
class TestServiceDeltaCheckpoints:
    def test_delta_chain_restores_byte_identically(self, tmp_path):
        async def scenario():
            ingest, probes = _trace()
            service = _service(
                tmp_path, checkpoint_mode="delta", checkpoint_every=1
            )
            await _serve(service, ingest + probes[:2])
            assert service.stats["checkpoints"] > 1
            # The chain is real: a full base plus delta links on disk.
            assert os.path.exists(tmp_path / "service.snap")
            assert _delta_files(tmp_path)
            # Reference: one uninterrupted service over the full trace.
            reference = _service(None)
            ref = await _serve(reference, ingest + probes[:2] + probes)
            # Restart restores through the parent chain.
            second = _service(tmp_path)
            assert second.warm_started
            warm = await _serve(second, probes)
            assert warm == ref[len(ingest) + 2 :]

        asyncio.run(scenario())

    def test_deltas_write_fewer_bytes_than_fulls(self, tmp_path):
        service = _service(tmp_path, checkpoint_mode="delta")
        rng = np.random.default_rng(0)
        for member in range(3):
            service._maintainer.update_many(
                member, rng.integers(0, N, size=700)
            )
        # Probes grow pools and compile sketches: real per-member bulk.
        service._maintainer.test(3, 0.3, params=TEST_PARAMS)
        service._maintainer.learn(3, 0.3)
        first = service.checkpoint()
        assert first == service.snapshot_path  # the chain base is full
        full_bytes = service.stats["checkpoint_bytes"]
        # Touch one member of three (~33% churn): the delta re-writes
        # only that member's slabs.
        service._maintainer.update_many(0, rng.integers(0, N, size=50))
        second = service.checkpoint()
        assert second != service.snapshot_path
        assert os.path.basename(second) in _delta_files(tmp_path)
        assert service.stats["checkpoint_bytes"] < full_bytes

    def test_compaction_rebases_and_prunes_the_chain(self, tmp_path):
        from repro.serving import service as service_module

        service = _service(tmp_path, checkpoint_mode="delta")
        rng = np.random.default_rng(1)
        service._maintainer.update_many(0, rng.integers(0, N, size=700))
        written = [service.checkpoint()]
        for _ in range(2 * service_module._COMPACT_EVERY):
            service._maintainer.update_many(
                int(rng.integers(0, 3)), rng.integers(0, N, size=40)
            )
            written.append(service.checkpoint())
        fulls = [p for p in written if p == service.snapshot_path]
        deltas = [p for p in written if p != service.snapshot_path]
        assert len(fulls) >= 2  # the chain compacted at least once
        assert deltas
        # Compaction pruned superseded links: what's on disk is at most
        # one chain's worth.
        assert len(_delta_files(tmp_path)) <= service_module._COMPACT_EVERY
        # The live tree and a restore of the latest checkpoint agree.
        restored = _service(tmp_path)
        assert restored.warm_started
        assert restored._maintainer.items_seen == service._maintainer.items_seen
        assert _freeze_probe(service._maintainer) == _freeze_probe(
            restored._maintainer
        )

    def test_restart_resumes_with_a_full_checkpoint(self, tmp_path):
        service = _service(tmp_path, checkpoint_mode="delta")
        rng = np.random.default_rng(2)
        service._maintainer.update_many(0, rng.integers(0, N, size=700))
        service.checkpoint()
        service._maintainer.update_many(1, rng.integers(0, N, size=700))
        assert service.checkpoint() != service.snapshot_path
        # A restarted process cannot diff against counters it never saw:
        # its first checkpoint is always a full compaction.
        second = _service(tmp_path, checkpoint_mode="delta")
        assert second.warm_started
        assert second.checkpoint() == second.snapshot_path
        assert _delta_files(tmp_path) == []  # pruned at compaction

    def test_delta_mode_requires_snapshot_dir(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            _service(None, checkpoint_mode="delta")
        with pytest.raises(InvalidParameterError):
            _service(tmp_path, checkpoint_mode="bogus")

    def test_broken_delta_write_falls_back_to_full(self, tmp_path):
        """A delta the parent cannot back self-heals into a compaction."""
        service = _service(tmp_path, checkpoint_mode="delta")
        rng = np.random.default_rng(3)
        service._maintainer.update_many(0, rng.integers(0, N, size=700))
        service.checkpoint()
        service._maintainer.update_many(0, rng.integers(0, N, size=40))
        # Corrupt the chain parent: the delta writer cannot read it.
        with open(service.snapshot_path, "r+b") as handle:
            handle.write(b"XXXXXXXX")
        path = service.checkpoint()
        assert path == service.snapshot_path  # fell back to a full write
        assert _service(tmp_path).warm_started
