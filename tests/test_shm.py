"""Lifecycle tests for the shared-memory slab plumbing.

Three regressions, each an observed failure mode of the worker-side
attachment cache in :mod:`repro.utils.shm`:

* a cached mapping keyed by *name only* going stale when the OS recycles
  the name for a smaller segment (the view would read past the mapping);
* a gone segment surfacing as a raw ``FileNotFoundError`` instead of the
  structured :class:`~repro.errors.SlabUnavailableError` the serving
  taxonomy classifies;
* LRU eviction re-ranking pinned (``BufferError``) entries as
  most-recently-used, pushing genuinely fresh segments out instead.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.errors import SlabUnavailableError
from repro.serving.requests import error_code
from repro.utils import shm
from repro.utils.shm import SharedSlab


def _forget(name: str) -> None:
    """Drop + close any cached attachment so unlink can reap the name."""
    segment = shm._ATTACHED.pop(name, None)
    if segment is not None:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - diagnostic path
            pass


class TestAttachmentRevalidation:
    def test_recycled_name_reattaches_at_new_size(self):
        """A cached short mapping must not back a longer slab's view."""
        name = f"repro_shm_reuse_{os.getpid()}"
        first = shared_memory.SharedMemory(create=True, size=4 * 8, name=name)
        try:
            np.ndarray((4,), dtype=np.int64, buffer=first.buf)[:] = np.arange(4)
            view = SharedSlab(name, (4,), "<i8").attach()
            assert list(view) == [0, 1, 2, 3]
            del view
        finally:
            first.close()
            first.unlink()
        # The OS hands the *same name* to a larger segment; the stale
        # 32-byte mapping is still cached under it.
        second = shared_memory.SharedMemory(create=True, size=16 * 8, name=name)
        try:
            np.ndarray((16,), dtype=np.int64, buffer=second.buf)[:] = np.arange(16)
            view = SharedSlab(name, (16,), "<i8").attach()
            assert list(view) == list(range(16))
            del view
        finally:
            _forget(name)
            second.close()
            second.unlink()

    def test_larger_cached_mapping_is_reused(self):
        """A prefix view over a bigger cached mapping stays valid."""
        name = f"repro_shm_prefix_{os.getpid()}"
        segment = shared_memory.SharedMemory(create=True, size=16 * 8, name=name)
        try:
            np.ndarray((16,), dtype=np.int64, buffer=segment.buf)[:] = np.arange(16)
            big = SharedSlab(name, (16,), "<i8").attach()
            cached = shm._ATTACHED[name]
            small = SharedSlab(name, (4,), "<i8").attach()
            assert shm._ATTACHED[name] is cached  # no reopen
            assert list(small) == [0, 1, 2, 3]
            del big, small
        finally:
            _forget(name)
            segment.close()
            segment.unlink()


class TestGoneSegments:
    def test_missing_segment_raises_structured_error(self):
        slab = SharedSlab(f"repro_shm_gone_{os.getpid()}", (4,), "<i8")
        with pytest.raises(SlabUnavailableError) as excinfo:
            slab.attach()
        assert slab.name in str(excinfo.value)
        assert error_code(excinfo.value) == "slab_unavailable"

    def test_recycled_smaller_segment_raises_structured_error(self):
        """A fresh-but-too-small segment means the original is gone."""
        name = f"repro_shm_small_{os.getpid()}"
        segment = shared_memory.SharedMemory(create=True, size=4 * 8, name=name)
        try:
            slab = SharedSlab(name, (64,), "<i8")
            with pytest.raises(SlabUnavailableError) as excinfo:
                slab.attach()
            assert name in str(excinfo.value)
            assert name not in shm._ATTACHED  # nothing cached on failure
        finally:
            _forget(name)
            segment.close()
            segment.unlink()


class _StubSegment:
    """A fake mapping whose close() raises while ``pinned``."""

    def __init__(self, size: int = 8) -> None:
        self.size = size
        self.pinned = False
        self.closed = False

    def close(self) -> None:
        if self.pinned:
            raise BufferError("a live ndarray still exports this buffer")
        self.closed = True

    def __len__(self) -> int:
        return self.size


class TestPinnedStaleMapping:
    def test_pinned_stale_mapping_is_dropped_without_unmap(self):
        """A stale-but-pinned cached mapping falls out of the cache; the
        live view keeps the old pages alive until its GC unmaps them."""
        name = f"repro_shm_pinned_{os.getpid()}"
        stale = _StubSegment(size=8)
        stale.pinned = True
        shm._ATTACHED[name] = stale
        segment = shared_memory.SharedMemory(create=True, size=16 * 8, name=name)
        try:
            np.ndarray((16,), dtype=np.int64, buffer=segment.buf)[:] = np.arange(16)
            view = SharedSlab(name, (16,), "<i8").attach()
            assert list(view) == list(range(16))
            assert not stale.closed  # close() raised; the pin held
            assert shm._ATTACHED[name] is not stale
            del view
        finally:
            _forget(name)
            shm._ATTACHED.pop(name, None)
            segment.close()
            segment.unlink()


class TestEvictionOrder:
    @pytest.fixture
    def cache(self, monkeypatch):
        fresh: "OrderedDict[str, _StubSegment]" = OrderedDict()
        monkeypatch.setattr(shm, "_ATTACHED", fresh)
        monkeypatch.setattr(shm, "_ATTACH_CACHE_LIMIT", 3)
        return fresh

    def test_pinned_entries_keep_their_lru_rank(self, cache):
        segments = {name: _StubSegment() for name in "abcd"}
        segments["a"].pinned = True
        cache.update(segments)

        shm._evict_attachments()

        # "a" is pinned: skipped in place, NOT re-ranked MRU.  The next
        # unpinned LRU entry ("b") went instead.
        assert list(cache) == ["a", "c", "d"]
        assert segments["b"].closed
        assert not segments["a"].closed

        # Once unpinned, "a" is still the LRU and goes on the next pass.
        segments["a"].pinned = False
        cache["e"] = _StubSegment()
        shm._evict_attachments()
        assert list(cache) == ["c", "d", "e"]
        assert segments["a"].closed

    def test_all_pinned_backs_off(self, cache):
        segments = {name: _StubSegment() for name in "abcd"}
        for segment in segments.values():
            segment.pinned = True
        cache.update(segments)
        shm._evict_attachments()  # must not raise or spin
        assert list(cache) == ["a", "b", "c", "d"]
        assert not any(segment.closed for segment in segments.values())
