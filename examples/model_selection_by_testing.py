"""Model selection: find the smallest credible k by property testing.

Runs in under a minute::

    python examples/model_selection_by_testing.py

A DBA wants to summarise a sensor column but does not know how many
buckets its distribution really has.  Rather than guessing, we use the
paper's tester as a model-selection oracle: the smallest ``k`` for which
"is it a tiling k-histogram?" accepts is a credible bucket count — found
from samples only, in sub-linear time.  We then learn the histogram at
that ``k`` and verify the fit.

The whole pipeline runs through one :class:`repro.HistogramSession`: the
per-k probes, the min-k search, and the final learn all share a single
sample budget (the probes after the first draw nothing at all).

Set ``REPRO_EXAMPLES_SMOKE=1`` to run with tiny parameters (the CI
examples-smoke job does; numbers are then illustrative only).
"""

import os

from repro import (
    EmpiricalDistribution,
    HistogramSession,
    distance_to_k_histogram,
    l1_distance,
)
from repro.core.params import GreedyParams, TesterParams
from repro.datasets import sensor_readings_column


SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")


def main() -> None:
    rows = 20_000 if SMOKE else 200_000
    values, n = sensor_readings_column(rows, rng=4)
    column = EmpiricalDistribution(values, n)
    epsilon = 0.25
    params = TesterParams(num_sets=15, set_size=3_000 if SMOKE else 30_000)
    session = HistogramSession(column, n, rng=10, test_budget=params)

    print(f"sensor column: {rows} rows over [0, {n}); searching for min k...\n")
    chosen_k = None
    for verdict in session.test_many([(k, epsilon) for k in range(1, 9)], norm="l1"):
        marker = "ACCEPT" if verdict.accepted else "reject"
        print(
            f"  k={verdict.k}: {marker}  "
            f"(flat intervals found: {len(verdict.partition)})"
        )
        if verdict.accepted and chosen_k is None:
            chosen_k = verdict.k
    if chosen_k is None:
        chosen_k = 8
        print("no k <= 8 accepted; falling back to k=8")
    # The one-shot partition search reuses the cached sketch (zero extra
    # samples); it is more conservative than the per-k probes because its
    # light-interval threshold is calibrated at max_k.
    search = session.min_k(epsilon, max_k=8)
    print(f"\npartition search at max_k=8: needs {search.k} pieces")
    print(f"(total samples drawn for all of the above: {session.samples_drawn})")

    truth_distance = distance_to_k_histogram(column, chosen_k, norm="l1")
    print(f"\nchosen k = {chosen_k}")
    print(f"ground-truth l1 distance of the column to {chosen_k}-histograms: "
          f"{truth_distance:.4f}")

    learned = session.learn(
        chosen_k,
        epsilon,
        params=GreedyParams.from_paper(n, chosen_k, epsilon, scale=0.05),
    )
    summary = learned.filled_histogram
    print(
        f"learned a {summary.num_pieces}-piece summary from "
        f"{learned.samples_used} samples; "
        f"l1(column, summary) = {l1_distance(column, summary):.4f}"
    )


if __name__ == "__main__":
    main()
