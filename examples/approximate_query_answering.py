"""Approximate query answering over a database column.

Runs in under a minute::

    python examples/approximate_query_answering.py

The paper's motivating scenario: a DBMS wants a tiny summary of a column
(here: 50,000 synthetic employee salaries) that answers range-count
queries without scanning the table.  We build the summary four ways from
the *same* sample budget and compare their selectivity errors:

* the paper's greedy learner (near v-optimal, sampling only),
* the v-optimal DP plug-in (needs an O(n^2 k) pass over the empirical
  distribution),
* classical equi-depth and equi-width histograms.

Set ``REPRO_EXAMPLES_SMOKE=1`` to run with tiny parameters (the CI
examples-smoke job does; numbers are then illustrative only).
"""

import os

from repro import (
    EmpiricalDistribution,
    HistogramSession,
    equidepth_from_samples,
    equiwidth_from_samples,
    voptimal_from_samples,
)
from repro.core.params import GreedyParams
from repro.datasets import salaries_column
from repro.queries import SelectivityEstimator, evaluate_estimator, mixed_workload


SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")


def main() -> None:
    rows, k, sample_budget = (
        (8_000, 8, 3_000) if SMOKE else (50_000, 16, 12_000)
    )

    values, n = salaries_column(rows, rng=1)
    column = EmpiricalDistribution(values, n)
    print(f"column: {rows} salary rows over domain [0, {n})")
    print(f"summary budget: k={k} pieces, sample budget: {sample_budget}\n")

    workload = mixed_workload(n, 300, rng=2)
    samples = column.sample(sample_budget, rng=3)

    # filled=True (the default): gaps the l2 objective left at value 0
    # carry their estimated weight instead, which matters for range
    # queries in the tail.
    session = HistogramSession(column, n, rng=3)
    greedy = SelectivityEstimator.from_session(
        session,
        k,
        0.25,
        params=GreedyParams(
            weight_sample_size=sample_budget // 3,
            collision_sets=7,
            collision_set_size=sample_budget // 10,
            rounds=k,
        ),
    ).histogram

    summaries = {
        "greedy (this paper)": greedy,
        "v-optimal plug-in": voptimal_from_samples(samples, n, k),
        "equi-depth": equidepth_from_samples(samples, n, k),
        "equi-width": equiwidth_from_samples(samples, n, k),
    }

    print(f"{'summary':22s} {'pieces':>6s} {'mean |err|':>12s} {'max |err|':>12s}")
    for name, histogram in summaries.items():
        report = evaluate_estimator(SelectivityEstimator(histogram), column, workload)
        print(
            f"{name:22s} {report.summary_size:6d} "
            f"{report.mean_absolute:12.6f} {report.max_absolute:12.6f}"
        )

    query = workload[0]
    estimator = SelectivityEstimator(greedy)
    print(
        f"\nexample query COUNT(*) WHERE {query.start} <= salary_band < {query.stop}: "
        f"estimated {estimator.estimate(query) * rows:.0f} rows, "
        f"true {column.weight(query) * rows:.0f} rows"
    )


if __name__ == "__main__":
    main()
