"""Maintaining a histogram over a drifting stream.

Runs in under a minute::

    python examples/streaming_maintenance.py

The paper's greedy learner descends from a streaming algorithm
([TGIK02]); this example closes the loop.  A workload monitor watches a
stream of product ids whose popularity shifts mid-stream (a viral
product); a reservoir sample plus periodic greedy rebuilds keeps a
16-piece summary current, and we track its range-query accuracy through
the drift.

Set ``REPRO_EXAMPLES_SMOKE=1`` to run with tiny parameters (the CI
examples-smoke job does; numbers are then illustrative only).
"""

import os

import numpy as np

from repro import Interval, l1_distance
from repro.distributions import families
from repro.streaming import StreamingHistogramMaintainer


SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")
BATCH = 2_000 if SMOKE else 5_000


def main() -> None:
    n = 1024
    before = families.zipf(n, 1.1)  # head-heavy catalogue
    # Mid-stream, a band of previously cold products goes viral.
    viral = families.two_level(n, heavy_start=700, heavy_length=50, heavy_mass=0.6)

    # forget_after_rebuild gives sliding-window semantics: the summary
    # reflects the last ~refresh_every items, so drift is tracked quickly.
    maintainer = StreamingHistogramMaintainer(
        n, k=16, refresh_every=BATCH, reservoir_capacity=BATCH,
        forget_after_rebuild=True, rng=0,
    )
    rng = np.random.default_rng(1)
    viral_band = Interval(700, 750)

    print(f"{'items seen':>10s} {'regime':>8s} {'rebuilds':>8s} "
          f"{'l1 to regime':>13s} {'viral-band mass':>16s}")
    for phase, (regime, label, batches) in enumerate(
        ((before, "before", 3 if SMOKE else 6), (viral, "after", 4 if SMOKE else 10))
    ):
        for _ in range(batches):
            maintainer.update_many(regime.sample(BATCH, rng))
            summary = maintainer.histogram
            print(
                f"{maintainer.items_seen:10d} {label:>8s} {maintainer.rebuilds:8d} "
                f"{l1_distance(regime, summary):13.3f} "
                f"{summary.range_mass(viral_band):16.3f}"
            )

    print(
        "\nReading: the summary tracks each regime within a few rebuilds; "
        "the viral band's mass estimate jumps from ~0 to ~0.6 after the shift."
    )


if __name__ == "__main__":
    main()
