"""The Theorem 5 lower bound, live.

Runs in a few seconds::

    python examples/lower_bound_demo.py

Builds the paper's YES/NO instance pair (an exact k-histogram versus a
version with one heavy interval scrambled to half support) and shows that
a collision-counting distinguisher is blind below ~sqrt(kn) samples and
sharp above — the Omega(sqrt(kn)) transition.

Set ``REPRO_EXAMPLES_SMOKE=1`` to run with tiny parameters (the CI
examples-smoke job does; numbers are then illustrative only).
"""

import math
import os

from repro.core.lower_bound import (
    collision_distinguisher,
    heavy_intervals,
    no_instance,
    yes_instance,
)
from repro.distributions import distance_to_k_histogram
from repro.utils.rng import spawn_rngs


SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")


def main() -> None:
    n, k, trials = 2048, 8, (6 if SMOKE else 30)
    yes = yes_instance(n, k)
    print(f"YES instance: {k} alternating intervals over [0, {n}), "
          f"{len(heavy_intervals(n, k))} of them heavy")
    example_no = no_instance(n, k, rng=0)
    print(
        "NO instance:  one heavy interval scrambled; certified l1 distance "
        f"to {k}-histograms: {distance_to_k_histogram(example_no, k, norm='l1'):.3f}\n"
    )

    print(f"{'m/sqrt(kn)':>10s} {'m':>6s} {'success rate':>13s}")
    rngs = spawn_rngs(1, 10_000)
    idx = 0
    for ratio in (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
        m = max(4, int(ratio * math.sqrt(k * n)))
        correct = 0
        for _ in range(trials):
            if not collision_distinguisher(yes.sample(m, rngs[idx]), n, k).says_no:
                correct += 1
            idx += 1
            fresh_no = no_instance(n, k, rng=rngs[idx]); idx += 1
            if collision_distinguisher(fresh_no.sample(m, rngs[idx]), n, k).says_no:
                correct += 1
            idx += 1
        print(f"{ratio:10.3f} {m:6d} {correct / (2 * trials):13.2f}")

    print(
        "\nReading: ~0.5 is coin-flipping; the jump happens around "
        "m = Theta(sqrt(kn)), matching Theorem 5."
    )


if __name__ == "__main__":
    main()
