"""Serving a fleet of 64 streams from one batched facade.

Runs in under a minute::

    python examples/fleet_serving.py

A monitoring plane watches 64 independent event streams over one shared
domain of 2048 buckets (think: per-tenant latency histograms).  Each
stream is an observed data column; the plane asks the same questions of
every stream — "is this tenant still well-modelled by a small
histogram?", "how many buckets does it really need?" — and relearns a
compact summary per tenant.  :class:`repro.api.HistogramFleet` answers
all of it fleet-batched: pools draw in one planned pass, compilation is
sort-free and stacked, and the testers' binary searches run in lockstep
across tenants.  Results are byte-identical to looping a
:class:`repro.api.HistogramSession` per stream (``tests/test_fleet.py``
holds that contract), just several times faster — ``BENCH_fleet.json``
tracks the measured speedup.  A :class:`repro.api.ParallelExecutor`
rides along: member compiles fan across a 4-worker pool over
shared-memory slabs (``BENCH_shard.json``), still byte-identical.

Set ``REPRO_EXAMPLES_SMOKE=1`` to run with tiny parameters (the CI
examples-smoke job does; numbers are then illustrative only).
"""

import os

import numpy as np

from repro.api import ArraySource, HistogramFleet, ParallelExecutor
from repro.core.params import GreedyParams, TesterParams
from repro.distributions import families
from repro.utils.timing import Timer

N = 2_048
FLEET_SIZE = 64
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")
STREAM_LENGTH = 5_000 if SMOKE else 50_000


def synthetic_streams() -> list[ArraySource]:
    """64 observed columns: most tenants are smooth k-histograms, a few
    are pathological (spiky / heavy-tailed) and should fail the tester."""
    rng = np.random.default_rng(0)
    sources = []
    for member in range(FLEET_SIZE):
        if member % 16 == 5:
            base = families.spikes(N, 12)           # pathological tenant
        elif member % 16 == 11:
            base = families.zipf(N, 1.3)            # heavy-tailed tenant
        else:
            base = families.random_tiling_histogram(
                N, int(rng.integers(2, 7)), rng=member + 1, min_piece=32
            )
        sources.append(ArraySource(base.sample(STREAM_LENGTH, rng), N))
    return sources


def main() -> None:
    executor = ParallelExecutor(workers=4)  # one pool for the serving plane
    fleet = HistogramFleet(
        synthetic_streams(),
        N,
        rng=42,  # spawns one independent generator per member
        test_budget=TesterParams(num_sets=15, set_size=1_500 if SMOKE else 8_000),
        learn_budget=GreedyParams(
            weight_sample_size=3_000 if SMOKE else 20_000,
            collision_sets=5,
            collision_set_size=1_500 if SMOKE else 10_000,
            rounds=1,  # re-derived per (k, epsilon)
        ),
        max_candidates=20_000,
        executor=executor,
    )

    with Timer() as t_test:
        verdicts = fleet.test_l2(8, 0.25)
    flagged = [f for f, verdict in enumerate(verdicts) if not verdict.accepted]
    print(
        f"tested {fleet.size} streams for 8-histogram structure in "
        f"{t_test.elapsed:.2f}s -> {len(flagged)} flagged: {flagged}"
    )

    with Timer() as t_min_k:
        selections = fleet.min_k(0.3, max_k=16, norm="l2")
    buckets = [s.k if s.k is not None else ">16" for s in selections]
    print(
        f"min-k sweep (shares the testers' verdict memos) in "
        f"{t_min_k.elapsed:.2f}s -> bucket counts: "
        f"{sorted(set(map(str, buckets)))}"
    )

    with Timer() as t_learn:
        summaries = fleet.learn(8, 0.25)
    total_pieces = sum(len(result.histogram.values) for result in summaries)
    print(
        f"learned 8-piece summaries for every stream in {t_learn.elapsed:.2f}s "
        f"({total_pieces} pieces total, "
        f"{sum(fleet.samples_drawn):,} samples drawn fleet-wide)"
    )

    print(
        "\nReading: the flagged tenants are exactly the synthetic "
        "pathological ones (indices 5, 21, 37, 53 are spiky; the zipf "
        "tenants need many more buckets than the smooth majority)."
    )
    executor.close()


if __name__ == "__main__":
    main()
