"""Quickstart: learn and test k-histograms from samples.

Runs in a few seconds::

    python examples/quickstart.py

Walks through the paper's two primitives on a synthetic distribution,
through the :class:`repro.HistogramSession` front door (one session per
distribution: every operation after the first reuses its samples and
sketches):

1. *learning* — build a near-v-optimal histogram from samples alone
   (Theorem 2), and compare it against the exact DP optimum that needs
   the full distribution;
2. *testing* — decide "is this distribution a k-histogram?" from samples
   (Theorems 3/4).

Set ``REPRO_EXAMPLES_SMOKE=1`` to run with tiny parameters (the CI
examples-smoke job does; numbers are then illustrative only).
"""

import os

from repro import (
    HistogramSession,
    distance_to_k_histogram,
    l2_distance,
    voptimal_histogram,
)
from repro.core.params import TesterParams
from repro.distributions import families


SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")


def main() -> None:
    n, k, epsilon = (128 if SMOKE else 512), 4, 0.25

    # A ground-truth distribution that IS a 4-histogram, plus one that is not.
    histogram_dist = families.random_tiling_histogram(n, k, rng=7, min_piece=16)
    sawtooth_dist = families.sawtooth(n)

    print("=== Learning (Theorem 2) ===")
    session = HistogramSession(histogram_dist, n, rng=0, scale=0.05)
    learned = session.learn(k, epsilon)
    optimal = voptimal_histogram(histogram_dist.pmf, k)
    print(f"samples used:        {learned.samples_used}")
    print(f"candidate intervals: {learned.num_candidates}")
    print(f"learned pieces:      {learned.histogram.num_pieces}")
    print(f"l2(p, learned H):    {l2_distance(histogram_dist, learned.histogram):.4f}")
    print(f"l2(p, optimal H*):   {l2_distance(histogram_dist, optimal):.4f}")
    print(f"(guarantee: squared error within 8*eps = {8 * epsilon} of optimal)")

    print("\n=== Testing (Theorem 4) ===")
    params = TesterParams(num_sets=15, set_size=3_000 if SMOKE else 30_000)
    sessions = (
        ("4-histogram", histogram_dist, session),  # reuses the learning session
        ("sawtooth", sawtooth_dist, HistogramSession(sawtooth_dist, n, rng=1)),
    )
    for name, dist, dist_session in sessions:
        verdict = dist_session.test_l1(k, epsilon, params=params)
        true_distance = distance_to_k_histogram(dist, k, norm="l1")
        print(
            f"{name:12s} -> accepted={verdict.accepted!s:5s} "
            f"(true l1 distance to property: {true_distance:.3f}, "
            f"flatness queries: {verdict.num_flatness_queries})"
        )


if __name__ == "__main__":
    main()
