"""Serve concurrent distribution-testing traffic with coalescing.

Runs in under a minute::

    python examples/async_serving.py

The serving scenario: many clients fire learn/test/min_k/selectivity
requests at a fleet of named streams, concurrently.  Request-at-a-time
serving wastes the fleet's batch kernels — every probe pays its own
compile-and-search.  :class:`repro.serving.HistogramService` instead
admits requests into short windows (``max_batch`` deep, ``max_linger_us``
long), coalesces same-operation requests across connections into ONE
fleet batch op, and answers each request individually — byte-identical
to serving them one at a time, just faster.

This example replays the same seeded skewed workload (Pareto-hot
streams, refresh storms, learn-after-test chains) twice — coalescing on
vs ``max_batch=1`` — and prints both replay reports plus the service's
coalescing stats.

Set ``REPRO_EXAMPLES_SMOKE=1`` to run with tiny parameters (the CI
examples-smoke job does; numbers are then illustrative only).
"""

import asyncio
import os

import numpy as np

from repro.serving import (
    HistogramService,
    ServiceConfig,
    WorkloadConfig,
    WorkloadGenerator,
    replay,
)

SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")


def describe(label: str, report, stats=None) -> None:
    print(f"  {label}:")
    print(
        f"    wall {report.wall_s * 1e3:7.1f} ms   "
        f"throughput {report.throughput_rps:8.1f} req/s"
    )
    print(
        f"    p50  {report.p50_us / 1e3:7.2f} ms   "
        f"p99        {report.p99_us / 1e3:7.2f} ms"
    )
    print(f"    ok {report.ok}/{report.requests}  errors {dict(report.errors)}")
    if stats is not None:
        print(
            f"    windows {stats['windows']}  batches {stats['batches']}  "
            f"coalesced {stats['coalesced']}  "
            f"largest batch {stats['largest_batch']}"
        )


async def serve(trace, names, n, k, epsilon, *, max_batch: int):
    service = HistogramService(
        names,
        n,
        k,
        epsilon,
        config=ServiceConfig(max_batch=max_batch, max_linger_us=500.0,
                             max_queue=4_096),
        references={"baseline": np.full(n, 1.0 / n)},
        rng=0,
    )
    async with service:
        report = await replay(service, trace, clients=32 if SMOKE else 96)
    return report, service.stats


def main() -> None:
    streams, requests, n = (8, 96, 512) if SMOKE else (32, 512, 4_096)
    # A probe-heavy storm mix: min_k sweeps and tests over freshly
    # refreshed streams are where coalescing pays (learn is
    # batch-neutral — greedy rounds dominate — so it is left out here;
    # the conformance suite covers it).
    workload = WorkloadConfig(
        streams=streams,
        requests=requests,
        seed=7,
        n=n,
        k=8,
        epsilon=0.3,
        mix=(
            ("ingest", 2.0),
            ("test", 2.0),
            ("min_k", 6.0),
            ("uniformity", 0.5),
        ),
        chain_after_test=0.0,
        burst_every=96,
        burst_len=48,
        ingest_batch=48,
        warmup_batch=1_024,
    )
    generator = WorkloadGenerator(workload)
    trace = generator.trace()
    hot = np.argsort(generator.popularity)[::-1][:3]
    print(
        f"workload: {len(trace)} requests over {streams} streams "
        f"(hot: {', '.join(generator.stream_names[i] for i in hot)})\n"
    )

    async def run():
        coalesced = await serve(
            trace, generator.stream_names, n, workload.k, workload.epsilon,
            max_batch=64,
        )
        serial = await serve(
            trace, generator.stream_names, n, workload.k, workload.epsilon,
            max_batch=1,
        )
        return coalesced, serial

    (co_report, co_stats), (se_report, _) = asyncio.run(run())
    describe("coalesced (max_batch=64, linger 500us)", co_report, co_stats)
    describe("request-at-a-time (max_batch=1)", se_report)
    if co_report.wall_s > 0:
        print(
            f"\n  coalescing speedup: "
            f"{se_report.wall_s / co_report.wall_s:.2f}x wall, "
            f"{co_report.throughput_rps / se_report.throughput_rps:.2f}x "
            f"throughput"
        )
    print("\nresponses are byte-identical either way (see tests/test_serving.py)")


if __name__ == "__main__":
    main()
