"""F2 — runtime scaling with the domain size n."""

from __future__ import annotations

import pytest
from conftest import emit

from repro.baselines.voptimal import voptimal_histogram
from repro.core.greedy import learn_histogram
from repro.distributions import families
from repro.experiments.learning import run_f2


def test_f2_table(benchmark, quick_config):
    """Regenerate the F2 scaling table."""
    result = benchmark.pedantic(run_f2, args=(quick_config,), rounds=1, iterations=1)
    emit(result)
    assert len(result.rows) >= 2


@pytest.mark.parametrize("n", [128, 256, 512])
def test_fast_greedy_scaling(benchmark, n):
    """The figure's fast-greedy series, point by point."""
    dist = families.random_tiling_histogram(n, 4, 13, min_piece=max(n // 32, 1))
    benchmark(
        lambda: learn_histogram(dist, n, 4, 0.25, method="fast", scale=0.05, rng=1)
    )


@pytest.mark.parametrize("n", [128, 256, 512])
def test_dp_scaling(benchmark, n):
    """The figure's DP baseline series (O(n^2 k))."""
    dist = families.random_tiling_histogram(n, 4, 13, min_piece=max(n // 32, 1))
    benchmark(lambda: voptimal_histogram(dist.pmf, 4, norm="l2"))
