"""T7 — greedy design ablations."""

from __future__ import annotations

from conftest import emit

from repro.core.greedy import learn_histogram
from repro.core.params import GreedyParams
from repro.distributions import families
from repro.experiments.ablations import run_t7


def test_t7_table(benchmark, quick_config):
    """Regenerate T7; every ablated variant must stay inside 8 eps."""
    result = benchmark.pedantic(run_t7, args=(quick_config,), rounds=1, iterations=1)
    emit(result)
    assert all(row[2] <= 8 * 0.25 for row in result.rows)


def test_single_collision_set_kernel(benchmark):
    """Micro: learning with r=1 (the median-of-r ablation arm)."""
    dist = families.zipf(256, 1.2)
    base = GreedyParams.from_paper(256, 4, 0.25, scale=0.05)
    params = GreedyParams(
        base.weight_sample_size, 1, base.collision_set_size, base.rounds
    )
    benchmark(lambda: learn_histogram(dist, 256, 4, 0.25, params=params, rng=1))
