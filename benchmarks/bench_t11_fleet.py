"""T11 — fleet serving: HistogramFleet vs a looped-session baseline.

The fleet claim (README.md, "Fleet serving"): answering a serving sweep
— a ``(k, epsilon)`` tester grid in both norms plus min-k selection —
for 64 streams over one shared domain through one
:class:`~repro.api.HistogramFleet` must beat looping a fresh
:class:`~repro.api.HistogramSession` per stream, cold compile included,
while returning byte-identical results (verdicts, query logs, learned
histograms).  Kernels come in ``<name>`` / ``<name>_loop`` pairs that
feed ``BENCH_fleet.json`` via ``benchmarks/record_fleet_bench.py``.

Workloads:

* ``test_fleet_serving_64`` — the tester sweep over 64 bootstrap
  streams (the headline pair; acceptance bar: >= 3x recorded);
* ``test_fleet_learn_64`` — a greedy learn over the same 64 streams
  (the smaller win: the fleet's sort-free compile, same greedy rounds).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.api import ArraySource, HistogramFleet, HistogramSession
from repro.core.params import GreedyParams, TesterParams
from repro.distributions import families

N = 4_096
FLEET_SIZE = 64
STREAM_LENGTH = 100_000
TEST_PARAMS = TesterParams(num_sets=15, set_size=8_000)
L2_GRID = [
    (k, eps)
    for k in (4, 8)
    for eps in (0.2, 0.225, 0.25, 0.275, 0.3, 0.325, 0.35, 0.375)
]
L1_GRID = [(k, eps) for k in (4, 8) for eps in (0.2, 0.25, 0.3, 0.35)]

# The learn pair runs on its own narrow domain: with a compile-bound
# budget (few greedy rounds, large collision sets) the pair isolates the
# fleet's sort-free prefix builder; a wide domain would instead measure
# candidate-set construction, which both paths share unchanged.
LEARN_N = 256
LEARN_PARAMS = GreedyParams(
    weight_sample_size=20_000, collision_sets=9, collision_set_size=120_000, rounds=3
)


@lru_cache(maxsize=None)
def _sources() -> tuple[ArraySource, ...]:
    """64 bootstrap streams: observed columns of a zipf base (cached;
    both kernels of a pair serve the same streams)."""
    base = families.zipf(N, 1.0)
    return tuple(
        ArraySource(base.sample(STREAM_LENGTH, np.random.default_rng(1_000 + f)), N)
        for f in range(FLEET_SIZE)
    )


@lru_cache(maxsize=None)
def _learn_sources() -> tuple[ArraySource, ...]:
    """64 narrower streams for the learn pair (see LEARN_N note)."""
    base = families.zipf(LEARN_N, 1.0)
    return tuple(
        ArraySource(base.sample(STREAM_LENGTH, np.random.default_rng(2_000 + f)), LEARN_N)
        for f in range(FLEET_SIZE)
    )


_SEEDS = list(range(FLEET_SIZE))


def _serving_fleet():
    """The tester sweep through one fleet (cold compile every call)."""
    fleet = HistogramFleet(_sources(), N, rngs=_SEEDS, test_budget=TEST_PARAMS)
    l2 = fleet.test_many(L2_GRID, norm="l2")
    l1 = fleet.test_many(L1_GRID, norm="l1")
    min_k_l2 = fleet.min_k(0.3, max_k=8, norm="l2")
    min_k_l1 = fleet.min_k(0.3, max_k=8, norm="l1")
    return l2, l1, min_k_l2, min_k_l1


def _serving_loop():
    """The same sweep, one fresh session per stream (the reference)."""
    l2, l1, min_k_l2, min_k_l1 = [], [], [], []
    for source, seed in zip(_sources(), _SEEDS):
        session = HistogramSession(source, N, rng=seed, test_budget=TEST_PARAMS)
        l2.append(session.test_many(L2_GRID, norm="l2"))
        l1.append(session.test_many(L1_GRID, norm="l1"))
        min_k_l2.append(session.min_k(0.3, max_k=8, norm="l2"))
        min_k_l1.append(session.min_k(0.3, max_k=8, norm="l1"))
    return l2, l1, min_k_l2, min_k_l1


def _learn_fleet():
    fleet = HistogramFleet(
        _learn_sources(), LEARN_N, rngs=_SEEDS, learn_budget=LEARN_PARAMS
    )
    return fleet.learn(4, 0.25)


def _learn_loop():
    return [
        HistogramSession(
            source, LEARN_N, rng=seed, learn_budget=LEARN_PARAMS
        ).learn(4, 0.25)
        for source, seed in zip(_learn_sources(), _SEEDS)
    ]


def test_fleet_serving_64(benchmark):
    """64-stream tester sweep through the fleet (cold compile included)."""
    results = benchmark.pedantic(_serving_fleet, rounds=3, iterations=1, warmup_rounds=1)
    assert results == _serving_loop()  # byte-identical verdicts and logs


def test_fleet_serving_64_loop(benchmark):
    """The looped-session baseline for the 64-stream tester sweep."""
    results = benchmark.pedantic(_serving_loop, rounds=3, iterations=1, warmup_rounds=1)
    assert len(results[0]) == FLEET_SIZE


def test_fleet_learn_64(benchmark):
    """64-stream greedy learn through the fleet (sort-free compile)."""
    results = benchmark.pedantic(_learn_fleet, rounds=2, iterations=1, warmup_rounds=1)
    reference = _learn_loop()
    assert all(
        np.array_equal(a.histogram.values, b.histogram.values)
        and np.array_equal(a.histogram.boundaries, b.histogram.boundaries)
        for a, b in zip(results, reference)
    )


def test_fleet_learn_64_loop(benchmark):
    """The looped-session baseline for the 64-stream learn."""
    results = benchmark.pedantic(_learn_loop, rounds=2, iterations=1, warmup_rounds=1)
    assert len(results) == FLEET_SIZE
