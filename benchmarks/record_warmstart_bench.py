"""Summarise warm-start benchmark runs into ``BENCH_warmstart.json``.

``bench_t14_warmstart.py`` benchmarks the restart scenario twice in one
run — ``<kernel>`` restoring the fleet's mmap snapshot and
``<kernel>_cold`` rebuilding from raw stream batches — so the pair's
speedup is time-to-first-response, warm over cold.  Two modes:

* seed / refresh the checked-in record::

      python benchmarks/record_warmstart_bench.py \
          --run run.json --out BENCH_warmstart.json

* diff a fresh CI run against the checked-in record::

      python benchmarks/record_warmstart_bench.py \
          --run run.json --baseline BENCH_warmstart.json \
          --out BENCH_warmstart.ci.json

Speedups use each kernel's *minimum* round time (the pairs run
interleaved on shared CI machines; the mean is also recorded).  The
acceptance bar for this suite: the 64-stream pair records >= 5x for
warm start over cold compile.
"""

from __future__ import annotations

import sys

from _recorder import PairedBenchSpec, paired_main

SPEC = PairedBenchSpec(
    kernel_prefix="test_warmstart",
    pair_suffix="_cold",
    primary="warm",
    pair="cold",
    stat="min_s",
    extra="mean",
    suite=(
        "bench_t14_warmstart kernel pairs (each restart scenario runs "
        "warm — restore the fleet's mmap snapshot and answer one tester "
        "sweep — and cold — re-ingest every reservoir and recompile — in "
        "the same run; speedup = cold_s / warm_s over per-kernel minimum "
        "round times)"
    ),
)


if __name__ == "__main__":
    sys.exit(
        paired_main(
            SPEC,
            description=__doc__,
            default_out="BENCH_warmstart.json",
        )
    )
