"""T14 — warm-start: restoring a fleet snapshot vs cold compile.

The persistence claim (README.md, "Persistence & warm-start"): a
restarted 64-stream serving fleet that restores its mmap snapshot must
reach its first byte-identical response at least **5x** faster than
rebuilding cold — replaying the retained stream history through every
reservoir (refresh rebuilds included) and recompiling every member's
tester sketches from scratch.  Kernels come in ``<name>`` /
``<name>_cold`` pairs that feed ``BENCH_warmstart.json`` via
``benchmarks/record_warmstart_bench.py``.

The workload is the restart scenario end to end: construct the
maintainer tree, bring the state back (restore vs replay), and answer
one full-fleet tester sweep — the time-to-first-response a rolling
restart actually pays.  Each stream's history is one refresh cycle
(``4 * capacity`` items, the maintainer's default ``refresh_every``);
the replay is deterministic given the maintainer seed, so the cold
rebuild reproduces the snapshotted fleet bit for bit and the pair's
results are asserted equal once per run.

Set ``REPRO_BENCH_SMOKE=1`` for the CI-sized workload (8 streams).
"""

from __future__ import annotations

import atexit
import os
from functools import lru_cache

import numpy as np

from repro.streaming.fleet import FleetMaintainer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N = 4_096
STREAMS = 8 if SMOKE else 64
CAPACITY = 4_096
HISTORY = 4 * CAPACITY  # one default refresh cycle per stream
K = 8
EPSILON = 0.3
SEED = 14


@lru_cache(maxsize=None)
def _batches() -> tuple:
    """One retained-history batch per stream (shared by the pair)."""
    return tuple(
        np.random.default_rng(3_000 + f).integers(0, N, size=HISTORY)
        for f in range(STREAMS)
    )


def _fresh() -> FleetMaintainer:
    return FleetMaintainer(
        STREAMS, N, K, EPSILON, reservoir_capacity=CAPACITY, rng=SEED
    )


def _cold():
    """Cold rebuild: replay every stream's history, compile, answer."""
    maintainer = _fresh()
    for f, batch in enumerate(_batches()):
        maintainer.update_many(f, batch)
    return maintainer.test(K, EPSILON)


@lru_cache(maxsize=None)
def _snapshot_path() -> str:
    """Snapshot one warmed fleet (built exactly like the cold kernel)."""
    maintainer = _fresh()
    for f, batch in enumerate(_batches()):
        maintainer.update_many(f, batch)
    maintainer.test(K, EPSILON)
    path = os.path.join(
        os.environ.get("TMPDIR", "/tmp"), f"repro_warmstart_{os.getpid()}.snap"
    )
    maintainer.snapshot(path)
    atexit.register(lambda: os.path.exists(path) and os.remove(path))
    return path


def _warm():
    """Warm start: restore the snapshot, answer the same sweep."""
    maintainer = _fresh()
    maintainer.restore(_snapshot_path())
    return maintainer.test(K, EPSILON)


def _bench_warm(benchmark):
    path = _snapshot_path()
    results = benchmark.pedantic(_warm, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["streams"] = STREAMS
    benchmark.extra_info["history_items"] = HISTORY
    benchmark.extra_info["snapshot_bytes"] = os.path.getsize(path)
    assert results == _cold()  # byte-identical first response


def _bench_cold(benchmark):
    results = benchmark.pedantic(_cold, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["streams"] = STREAMS
    benchmark.extra_info["history_items"] = HISTORY
    assert len(results) == STREAMS


if SMOKE:

    def test_warmstart_fleet_8(benchmark):
        """8-stream warm start (restore + sweep), CI smoke size."""
        _bench_warm(benchmark)

    def test_warmstart_fleet_8_cold(benchmark):
        """The cold-rebuild baseline for the 8-stream warm start."""
        _bench_cold(benchmark)

else:

    def test_warmstart_fleet_64(benchmark):
        """64-stream warm start (restore + sweep) — the headline pair;
        acceptance bar: >= 5x over the cold rebuild."""
        _bench_warm(benchmark)

    def test_warmstart_fleet_64_cold(benchmark):
        """The cold-rebuild baseline for the 64-stream warm start."""
        _bench_cold(benchmark)
