"""T15 — checkpoints: differential vs full writes under low churn.

The differential-checkpoint claim (README.md, "Persistence &
warm-start"): when few members mutate between checkpoints, a
``checkpoint_mode="delta"`` write must re-write only the churned
members' slabs — carrying every unchanged payload as a (parent-file,
offset, crc32) reference — and so land **<= 25% of the full-snapshot
bytes** at <= 10% member churn.  Kernels come in ``<name>`` /
``<name>_full`` pairs that feed ``BENCH_checkpoint.json`` via
``benchmarks/record_checkpoint_bench.py``; the guarded ``speedup``
there is the *bytes* ratio (full / delta), which is deterministic
given the fleet shape, with wall time recorded alongside.

The scenario is the steady-state serving loop: a warmed
:class:`repro.serving.HistogramService` (every member ingested and
compiled, one full parent checkpoint on disk) takes a small ingest
wave — ``max(1, streams // 10)`` members — and checkpoints.  The
delta kernel extends its parent chain (rounds stay below the
``_COMPACT_EVERY`` compaction bound); the full kernel re-writes
everything each round.  Restores through the chain are byte-identity
pinned by the conformance suite's snapshot axis; this bench prices
the write path.

Set ``REPRO_BENCH_SMOKE=1`` for the CI-sized fleet (8 streams — one
churned member is 12.5% churn, so the smoke bytes ratio is guarded at
a lower floor than the 64-stream record's 4x).
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
from functools import lru_cache

import numpy as np

from repro.serving import HistogramService

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N = 4_096
STREAMS = 8 if SMOKE else 64
CAPACITY = 2_048
HISTORY = CAPACITY  # one full reservoir per member before the parent
K = 8
EPSILON = 0.3
SEED = 15
CHURN_MEMBERS = max(1, STREAMS // 10)  # <= 10% churn at full size
CHURN_ITEMS = 256

_churn_rng = np.random.default_rng(SEED + 1)


@lru_cache(maxsize=None)
def _service(mode: str) -> HistogramService:
    """One warmed service per mode with a full parent checkpoint."""
    directory = tempfile.mkdtemp(prefix=f"repro_t15_{mode}_")
    atexit.register(shutil.rmtree, directory, ignore_errors=True)
    service = HistogramService(
        [f"stream-{member:02d}" for member in range(STREAMS)],
        N,
        K,
        EPSILON,
        reservoir_capacity=CAPACITY,
        rng=SEED,
        snapshot_dir=directory,
        checkpoint_mode=mode,
    )
    rng = np.random.default_rng(SEED)
    for member in range(STREAMS):
        service.maintainer.update_many(member, rng.integers(0, N, size=HISTORY))
    service.maintainer.test(K, EPSILON)  # compile every member's sketches
    service.checkpoint()  # the full parent every delta diffs against
    return service


def _churn_and_checkpoint(service: HistogramService) -> str:
    """One steady-state window: a small ingest wave, then a checkpoint."""
    for member in range(CHURN_MEMBERS):
        service.maintainer.update_many(
            member, _churn_rng.integers(0, N, size=CHURN_ITEMS)
        )
    return service.checkpoint()


def _bench(benchmark, mode: str) -> str:
    service = _service(mode)
    full_bytes = os.path.getsize(service.snapshot_path)
    written = benchmark.pedantic(
        lambda: _churn_and_checkpoint(service),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["streams"] = STREAMS
    benchmark.extra_info["churn_members"] = CHURN_MEMBERS
    benchmark.extra_info["checkpoint_bytes"] = os.path.getsize(written)
    benchmark.extra_info["full_parent_bytes"] = full_bytes
    return written


if SMOKE:

    def test_checkpoint_delta_8(benchmark):
        """8-stream delta checkpoint under one-member churn, CI size."""
        written = _bench(benchmark, "delta")
        assert os.path.basename(written).startswith("service-delta-")

    def test_checkpoint_delta_8_full(benchmark):
        """The full-rewrite baseline for the 8-stream checkpoint."""
        written = _bench(benchmark, "full")
        assert os.path.basename(written) == "service.snap"

else:

    def test_checkpoint_delta_64(benchmark):
        """64-stream delta checkpoint under <= 10% churn — the
        headline pair; acceptance bar: delta bytes <= 25% of full."""
        written = _bench(benchmark, "delta")
        assert os.path.basename(written).startswith("service-delta-")
        full_bytes = os.path.getsize(_service("delta").snapshot_path)
        assert os.path.getsize(written) <= 0.25 * full_bytes

    def test_checkpoint_delta_64_full(benchmark):
        """The full-rewrite baseline for the 64-stream checkpoint."""
        written = _bench(benchmark, "full")
        assert os.path.basename(written) == "service.snap"
