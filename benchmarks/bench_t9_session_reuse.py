"""T9 — session reuse: one shared draw vs per-call sampling.

The facade claim (README.md "The front door"): answering a ``(k, eps)``
grid through one :class:`repro.api.HistogramSession` amortises sampling,
sketch building, and candidate-grid compilation, and must be at least 2x
faster than the same grid through independent one-shot calls at the same
per-point budget.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import emit

from repro.api import CountingSource, HistogramSession
from repro.core.greedy import learn_histogram
from repro.core.params import GreedyParams, TesterParams, greedy_rounds
from repro.core.tester import test_k_histogram_l2 as khist_test_l2
from repro.distributions import families
from repro.experiments.harness import ExperimentResult
from repro.utils.timing import Timer

N = 2_048
DIST = families.zipf(N, 1.0)
GRID = [(2, 0.3), (4, 0.25), (6, 0.25), (8, 0.2)]
LEARN_BUDGET = GreedyParams(
    weight_sample_size=500_000,
    collision_sets=9,
    collision_set_size=150_000,
    rounds=1,  # re-derived per grid point
)
TEST_BUDGET = TesterParams(num_sets=15, set_size=60_000)
MAX_CANDIDATES = 8_000


def _per_call_learn():
    return [
        learn_histogram(
            DIST,
            N,
            k,
            eps,
            params=replace(LEARN_BUDGET, rounds=greedy_rounds(k, eps)),
            max_candidates=MAX_CANDIDATES,
            rng=1,
        )
        for k, eps in GRID
    ]


def _session_learn():
    session = HistogramSession(
        DIST, N, rng=1, learn_budget=LEARN_BUDGET, max_candidates=MAX_CANDIDATES
    )
    return session.learn_many(GRID), session


def _per_call_test():
    return [
        khist_test_l2(DIST, N, k, eps, params=TEST_BUDGET, rng=1) for k, eps in GRID
    ]


def _session_test():
    session = HistogramSession(DIST, N, rng=1, test_budget=TEST_BUDGET)
    return session.test_many(GRID, norm="l2"), session


def test_t9_learn_grid_speedup():
    """learn_many over a 4-point grid: >= 2x vs four one-shot calls."""
    with Timer() as t_per_call:
        per_call = _per_call_learn()
    with Timer() as t_sess:
        batched, session = _session_learn()
    speedup = t_per_call.elapsed / t_sess.elapsed
    result = ExperimentResult(
        "T9",
        "Session reuse: (k, eps) learning grid, shared vs per-call draws",
        ["path", "grid points", "samples drawn", "draw events", "time (s)", "speedup"],
        notes=[
            f"n={N}, zipf(1.0), budget ell={LEARN_BUDGET.weight_sample_size} "
            f"r={LEARN_BUDGET.collision_sets} m={LEARN_BUDGET.collision_set_size}, "
            f"max_candidates={MAX_CANDIDATES}",
            "Claim: one draw + one compile answers the whole grid; >= 2x wall-clock.",
        ],
    )
    per_call_samples = sum(r.samples_used for r in per_call)
    result.rows.append(
        ["per-call", len(GRID), per_call_samples, len(GRID), t_per_call.elapsed, 1.0]
    )
    result.rows.append(
        [
            "session",
            len(batched),
            session.samples_drawn,
            session.draw_events["learn"],
            t_sess.elapsed,
            speedup,
        ]
    )
    emit(result)
    assert session.draw_events["learn"] == 1
    assert len(batched) == len(GRID)
    assert speedup >= 2.0, f"session path only {speedup:.2f}x faster"


def test_t9_test_grid_speedup():
    """test_many over a 4-point grid: >= 2x vs four one-shot calls."""
    with Timer() as t_per_call:
        _per_call_test()
    with Timer() as t_sess:
        verdicts, session = _session_test()
    speedup = t_per_call.elapsed / t_sess.elapsed
    print(
        f"\ntester grid: per-call {t_per_call.elapsed:.3f}s, "
        f"session {t_sess.elapsed:.3f}s ({speedup:.1f}x, "
        f"{session.samples_drawn} samples, "
        f"{session.draw_events['test']} draw event)"
    )
    assert session.draw_events["test"] == 1
    assert len(verdicts) == len(GRID)
    assert speedup >= 2.0, f"session path only {speedup:.2f}x faster"


def test_t9_sample_accounting():
    """The session grid consumes one budget; per-call consumes four."""
    counting = CountingSource(DIST)
    session = HistogramSession(
        counting, N, rng=1, learn_budget=LEARN_BUDGET, max_candidates=MAX_CANDIDATES
    )
    session.learn_many(GRID)
    assert counting.calls == 1 + LEARN_BUDGET.collision_sets
    assert session.samples_drawn == LEARN_BUDGET.total_samples
