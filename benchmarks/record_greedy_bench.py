"""Summarise greedy benchmark runs into ``BENCH_greedy.json``.

Two modes, both consuming ``pytest-benchmark --benchmark-json`` output:

* seed / refresh the checked-in before-vs-after record::

      python benchmarks/record_greedy_bench.py \
          --before before.json --after after.json --out BENCH_greedy.json

* diff a fresh CI run against the checked-in record (the run's means are
  compared to the record's ``after_s`` — the perf trajectory)::

      python benchmarks/record_greedy_bench.py \
          --run run.json --baseline BENCH_greedy.json --out BENCH_greedy.ci.json

The summary keeps one entry per benchmark (mean/stddev seconds and the
speedup ratio), small enough to live in the repository and be diffed by
future PRs.  Unlike the paired suites, the before/after sides here come
from *separate* runs (two engines cannot share one process), so this
script keeps its own reducer on top of the shared loading and output
helpers in ``benchmarks/_recorder.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

from _recorder import load_stats, write_summary


def _summary(
    before: dict[str, dict[str, float]], after: dict[str, dict[str, float]]
) -> dict:
    benchmarks = {}
    for name, stats in after.items():
        entry = {
            "after_s": round(stats["mean_s"], 5),
            "after_stddev_s": round(stats["stddev_s"], 5),
        }
        if name in before:
            entry["before_s"] = round(before[name]["mean_s"], 5)
            if stats["mean_s"] > 0:
                entry["speedup"] = round(before[name]["mean_s"] / stats["mean_s"], 2)
        benchmarks[name] = entry
    return {
        "suite": "bench_t2_greedy_fast kernels (bench_t9_session_reuse runs "
        "alongside as smoke asserts; its tests carry their own >= 2x bars "
        "and no benchmark fixture, so they produce no timing records)",
        "python": platform.python_version(),
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--before", help="pytest-benchmark json of the old engine")
    parser.add_argument("--after", help="pytest-benchmark json of the new engine")
    parser.add_argument("--run", help="pytest-benchmark json of a fresh run")
    parser.add_argument("--baseline", help="checked-in BENCH_greedy.json to diff against")
    parser.add_argument("--out", default="BENCH_greedy.json", help="output path")
    args = parser.parse_args(argv)

    if args.before and args.after:
        summary = _summary(load_stats(args.before), load_stats(args.after))
    elif args.run and args.baseline:
        with open(args.baseline) as handle:
            recorded = json.load(handle)["benchmarks"]
        baseline = {
            name: {"mean_s": entry["after_s"]}
            for name, entry in recorded.items()
            if "after_s" in entry
        }
        summary = _summary(baseline, load_stats(args.run))
    else:
        parser.error("need either --before/--after or --run/--baseline")

    write_summary(summary, args.out)
    for name, entry in sorted(summary["benchmarks"].items()):
        ratio = f' ({entry["speedup"]}x)' if "speedup" in entry else ""
        print(f'{name}: {entry["after_s"]}s{ratio}')
    return 0


if __name__ == "__main__":
    sys.exit(main())
