"""Summarise checkpoint benchmark runs into ``BENCH_checkpoint.json``.

``bench_t15_checkpoint.py`` benchmarks the steady-state checkpoint
twice in one run — ``<kernel>`` writing a differential checkpoint
against its parent and ``<kernel>_full`` re-writing every slab — with
each kernel's bytes written riding along as ``extra_info``.  The
headline ``speedup`` of a pair is the **bytes ratio** (full bytes /
delta bytes): it is what the differential format exists to shrink, it
is deterministic given the fleet shape (so the CI floor cannot flake
on a noisy runner), and the acceptance bar — delta <= 25% of full at
<= 10% churn — is exactly ``speedup >= 4``.  Wall times ride along as
``delta_s`` / ``full_s`` with a ``time_speedup``.  Two modes:

* seed / refresh the checked-in record::

      python benchmarks/record_checkpoint_bench.py \
          --run run.json --out BENCH_checkpoint.json

* diff a fresh CI run against the checked-in record::

      python benchmarks/record_checkpoint_bench.py \
          --run run.json --baseline BENCH_checkpoint.json \
          --out BENCH_checkpoint.ci.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

from _recorder import write_summary

SUITE = (
    "bench_t15_checkpoint kernel pairs (each steady-state churn window "
    "checkpoints through the delta write path and the full re-write in "
    "the same run; speedup = full checkpoint_bytes / delta "
    "checkpoint_bytes — the deterministic bytes ratio the differential "
    "format exists to shrink — with wall times recorded as delta_s / "
    "full_s and their ratio as time_speedup)"
)

PAIR_SUFFIX = "_full"


def load_kernels(pytest_benchmark_json: str) -> dict[str, dict]:
    """Per-kernel stats + extra_info of one benchmark run."""
    with open(pytest_benchmark_json) as handle:
        data = json.load(handle)
    return {
        bench["name"]: {
            "mean_s": bench["stats"]["mean"],
            "min_s": bench["stats"]["min"],
            "extra": bench.get("extra_info", {}),
        }
        for bench in data["benchmarks"]
    }


def summarise(
    kernels: dict[str, dict], baseline: dict[str, dict] | None = None
) -> dict:
    """Reduce kernel pairs to the ``BENCH_checkpoint.json`` layout."""
    benchmarks = {}
    for name, primary in kernels.items():
        if name.endswith(PAIR_SUFFIX) or not name.startswith("test_checkpoint"):
            continue
        entry = {
            "delta_s": round(primary["min_s"], 5),
            "delta_mean_s": round(primary["mean_s"], 5),
        }
        for key in sorted(primary["extra"]):
            entry[f"delta_{key}"] = primary["extra"][key]
        pair = kernels.get(name + PAIR_SUFFIX)
        if pair is not None:
            entry["full_s"] = round(pair["min_s"], 5)
            entry["full_mean_s"] = round(pair["mean_s"], 5)
            for key in sorted(pair["extra"]):
                entry[f"full_{key}"] = pair["extra"][key]
            delta_bytes = primary["extra"].get("checkpoint_bytes")
            full_bytes = pair["extra"].get("checkpoint_bytes")
            if delta_bytes and full_bytes:
                entry["speedup"] = round(full_bytes / delta_bytes, 2)
            if primary["min_s"] > 0:
                entry["time_speedup"] = round(
                    pair["min_s"] / primary["min_s"], 2
                )
        if baseline is not None and name in baseline:
            recorded = baseline[name].get("speedup")
            if recorded and entry.get("speedup"):
                entry["baseline_speedup"] = recorded
        benchmarks[name] = entry
    return {
        "suite": SUITE,
        "python": platform.python_version(),
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--run", required=True, help="pytest-benchmark json of a run"
    )
    parser.add_argument(
        "--baseline", help="checked-in BENCH_checkpoint.json to diff against"
    )
    parser.add_argument(
        "--out", default="BENCH_checkpoint.json", help="output path"
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)["benchmarks"]
    summary = summarise(load_kernels(args.run), baseline)
    write_summary(summary, args.out)
    for name, entry in sorted(summary["benchmarks"].items()):
        ratio = (
            f' ({entry["speedup"]}x fewer bytes)' if "speedup" in entry else ""
        )
        print(f'{name}: {entry["delta_s"]}s{ratio}')
    return 0


if __name__ == "__main__":
    sys.exit(main())
