"""T3 — the l2 tiling k-histogram tester (Theorem 3)."""

from __future__ import annotations

from conftest import emit

from repro.core.tester import test_k_histogram_l2 as khist_test_l2
from repro.distributions import families
from repro.experiments.testing import run_t3


def test_t3_table(benchmark, quick_config):
    """Regenerate T3; YES rows accept >= 2/3, NO rows accept <= 1/3."""
    result = benchmark.pedantic(run_t3, args=(quick_config,), rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        if row[1] == "YES":
            assert row[3] >= 2 / 3
        else:
            assert row[3] <= 1 / 3


def test_l2_tester_kernel(benchmark):
    """Micro: one l2 test run on n=256."""
    dist = families.random_tiling_histogram(256, 4, 21, min_piece=8)
    benchmark(
        lambda: khist_test_l2(dist, 256, 4, 0.25, scale=0.05, rng=1)
    )
