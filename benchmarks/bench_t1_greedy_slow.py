"""T1 — exhaustive greedy (Algorithm 1) vs the DP optimum."""

from __future__ import annotations

from conftest import emit

from repro.core.greedy import learn_histogram
from repro.distributions import families
from repro.experiments.learning import run_t1


def test_t1_table(benchmark, quick_config):
    """Regenerate the T1 table; assert every excess is within 5 eps."""
    result = benchmark.pedantic(run_t1, args=(quick_config,), rounds=1, iterations=1)
    emit(result)
    assert all(row[-1] for row in result.rows)


def test_exhaustive_greedy_kernel(benchmark):
    """Micro: one exhaustive learn on n=128 (the n^2-candidate regime)."""
    dist = families.random_tiling_histogram(128, 4, 11, min_piece=4)
    benchmark(
        lambda: learn_histogram(
            dist, 128, 4, 0.25, method="exhaustive", scale=0.02, rng=1
        )
    )
