"""Fail CI when a recorded kernel pair's speedup falls below a floor.

The ``record_*_bench.py`` summarisers reduce each ``<kernel>`` /
``<kernel>_loop`` pair of one run to a within-run ``speedup`` (both
twins measured interleaved on the same machine, so the ratio is
meaningful even on a noisy shared runner where absolute times are
not).  This guard reads one such summary and exits non-zero if any
named kernel is missing or its speedup is under the floor::

    python benchmarks/perf_guard.py --summary BENCH_shard.ci.json \
        --min-speedup 1.5 test_shard_learn_outofcore test_shard_learn_fleet_64

The bench-smoke job runs it over the smoke-sized shard run: the learn
kernels' lockstep-over-incremental ratio is a property of the engine,
not the workload size, so a floor of 1.5x (full-size record: >= 2x)
holds at CI scale and catches a regression that re-opens the
sharded-learn gap.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--summary", required=True, help="a record_*_bench.py summary json"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="fail below this within-run pair speedup (default 1.5)",
    )
    parser.add_argument(
        "kernels", nargs="+", help="kernel names that must hold the floor"
    )
    args = parser.parse_args(argv)

    with open(args.summary) as handle:
        benchmarks = json.load(handle)["benchmarks"]

    failures = []
    for kernel in args.kernels:
        entry = benchmarks.get(kernel)
        if entry is None or "speedup" not in entry:
            failures.append(f"{kernel}: missing from {args.summary}")
            continue
        verdict = "ok" if entry["speedup"] >= args.min_speedup else "FAIL"
        print(f"{kernel}: {entry['speedup']}x (floor {args.min_speedup}x) {verdict}")
        if entry["speedup"] < args.min_speedup:
            failures.append(
                f"{kernel}: {entry['speedup']}x < {args.min_speedup}x"
            )
    for failure in failures:
        print(f"perf-guard: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
