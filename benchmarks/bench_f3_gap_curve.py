"""F3 — rejection rate vs distance (the testing gap)."""

from __future__ import annotations

from conftest import emit

from repro.experiments.testing import run_f3


def test_f3_curve(benchmark, quick_config):
    """Regenerate F3; rejection must be ~0 at distance 0 and ~1 far out."""
    result = benchmark.pedantic(run_f3, args=(quick_config,), rounds=1, iterations=1)
    emit(result)
    rows = result.rows
    assert rows[0][2] <= 1 / 3  # members almost never rejected
    assert rows[-1][2] >= 2 / 3  # far instances almost always rejected
