"""Summarise serving benchmark runs into ``BENCH_serve.json``.

``bench_t13_serving.py`` benchmarks every workload twice in one run —
``<kernel>`` through the coalescing service (deep admission windows)
and ``<kernel>_serial`` request-at-a-time (``max_batch=1``, the same
code path) — and each kernel carries its replay report (p50/p99
latency, throughput) as ``extra_info``.  This recorder reduces the
pair to wall times *and* latency/throughput ratios.  Two modes:

* seed / refresh the checked-in record::

      python benchmarks/record_serving_bench.py \
          --run run.json --out BENCH_serve.json

* diff a fresh CI run against the checked-in record::

      python benchmarks/record_serving_bench.py \
          --run run.json --baseline BENCH_serve.json --out BENCH_serve.ci.json

Speedups use each kernel's *minimum* round time (the pairs run
interleaved on shared CI machines; the mean is also recorded).  The
acceptance bars for this suite: the 64-stream storm workload records
>= 1.5x on throughput (equivalently wall time) for coalescing over
request-at-a-time serving, and the re-query workload — whose
``_serial`` twin flips the response cache off rather than coalescing —
records >= 1.5x for cached over uncached serving.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

from _recorder import write_summary

SUITE = (
    "bench_t13_serving kernel pairs (the storm workload replays through "
    "the coalescing HistogramService and request-at-a-time (max_batch=1) "
    "in the same run, while the requery pair holds coalescing fixed and "
    "flips only the response cache — its _serial twin is cache-off, not "
    "request-at-a-time; speedup = serial_s / coalesced_s over per-kernel "
    "minimum round times; p50/p99 latency and throughput come from each "
    "kernel's closed-loop replay report; the unpaired _chaos kernel "
    "replays the storm under seeded worker kills and records the "
    "executor's recovery counters instead of a speedup)"
)

PAIR_SUFFIX = "_serial"


def load_kernels(pytest_benchmark_json: str) -> dict[str, dict]:
    """Per-kernel stats + replay extra_info of one benchmark run."""
    with open(pytest_benchmark_json) as handle:
        data = json.load(handle)
    return {
        bench["name"]: {
            "mean_s": bench["stats"]["mean"],
            "min_s": bench["stats"]["min"],
            "extra": bench.get("extra_info", {}),
        }
        for bench in data["benchmarks"]
    }


def summarise(
    kernels: dict[str, dict], baseline: dict[str, dict] | None = None
) -> dict:
    """Reduce kernel pairs to the ``BENCH_serve.json`` layout."""
    benchmarks = {}
    for name, primary in kernels.items():
        if name.endswith(PAIR_SUFFIX) or not name.startswith("test_serve"):
            continue
        entry = {
            "coalesced_s": round(primary["min_s"], 5),
            "coalesced_mean_s": round(primary["mean_s"], 5),
        }
        # Copy every extra_info key a kernel recorded — latency and
        # throughput for the pairs, executor health counters (respawns,
        # worker_crashes, ...) for the chaos kernel.
        for key in sorted(primary["extra"]):
            entry[f"coalesced_{key}"] = primary["extra"][key]
        pair = kernels.get(name + PAIR_SUFFIX)
        if pair is not None:
            entry["serial_s"] = round(pair["min_s"], 5)
            entry["serial_mean_s"] = round(pair["mean_s"], 5)
            for key in sorted(pair["extra"]):
                entry[f"serial_{key}"] = pair["extra"][key]
            if primary["min_s"] > 0:
                entry["speedup"] = round(pair["min_s"] / primary["min_s"], 2)
            if entry.get("coalesced_p99_us") and entry.get("serial_p99_us"):
                entry["p99_ratio"] = round(
                    entry["serial_p99_us"] / entry["coalesced_p99_us"], 2
                )
        if baseline is not None and name in baseline:
            recorded = baseline[name].get("coalesced_s")
            if recorded and primary["min_s"] > 0:
                entry["baseline_coalesced_s"] = recorded
                entry["vs_baseline"] = round(recorded / primary["min_s"], 2)
        benchmarks[name] = entry
    return {
        "suite": SUITE,
        "python": platform.python_version(),
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--run", required=True, help="pytest-benchmark json of a run"
    )
    parser.add_argument(
        "--baseline", help="checked-in BENCH_serve.json to diff against"
    )
    parser.add_argument("--out", default="BENCH_serve.json", help="output path")
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)["benchmarks"]
    summary = summarise(load_kernels(args.run), baseline)
    write_summary(summary, args.out)
    for name, entry in sorted(summary["benchmarks"].items()):
        ratio = f' ({entry["speedup"]}x)' if "speedup" in entry else ""
        drift = (
            f' [vs baseline {entry["vs_baseline"]}x]'
            if "vs_baseline" in entry
            else ""
        )
        print(f'{name}: {entry["coalesced_s"]}s{ratio}{drift}')
    return 0


if __name__ == "__main__":
    sys.exit(main())
