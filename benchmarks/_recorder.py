"""Shared machinery for the ``record_*_bench.py`` summarisers.

Every bench recorder does the same four things — load a
``pytest-benchmark --benchmark-json`` run, reduce each kernel (or
kernel pair) to a few rounded numbers, optionally diff against the
checked-in record, and write/print a small JSON summary that lives in
the repository.  The scripts differ only in their *spec*: which kernels
count, how pairs are named, which statistic is the location estimate,
and what the summary keys are called.  :class:`PairedBenchSpec` +
:func:`paired_main` capture the common paired form
(``<kernel>`` vs ``<kernel><suffix>`` inside one run);
``record_greedy_bench.py`` keeps its own before/after reducer but
shares the loading and output helpers.

The emitted JSON layouts are byte-compatible with the records the CI
bench-smoke job diffs against (``BENCH_tester.json``,
``BENCH_fleet.json``, ``BENCH_shard.json``, ``BENCH_greedy.json``).
"""

from __future__ import annotations

import argparse
import json
import platform
from dataclasses import dataclass


def load_stats(pytest_benchmark_json: str) -> dict[str, dict[str, float]]:
    """Per-kernel stats of one ``pytest-benchmark`` json run."""
    with open(pytest_benchmark_json) as handle:
        data = json.load(handle)
    return {
        bench["name"]: {
            "mean_s": bench["stats"]["mean"],
            "min_s": bench["stats"]["min"],
            "stddev_s": bench["stats"]["stddev"],
            "rounds": bench["stats"]["rounds"],
        }
        for bench in data["benchmarks"]
    }


def write_summary(summary: dict, out_path: str) -> None:
    """Write one summary JSON the way every record script always has."""
    with open(out_path, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")


@dataclass(frozen=True)
class PairedBenchSpec:
    """One paired recorder's shape.

    Attributes
    ----------
    kernel_prefix:
        Only kernels starting with this count (their pairs ride along).
    pair_suffix:
        The baseline twin's name suffix (e.g. ``"_loop"``, ``"_full"``).
    primary / pair:
        Key stems: the summary holds ``<primary>_s``, ``<pair>_s``,
        ``speedup``, ``baseline_<primary>_s`` and ``vs_baseline``.
    stat:
        The location estimate (``"min_s"`` for interleaved pairs on
        noisy shared machines, ``"mean_s"`` otherwise).
    extra:
        ``"mean"`` records ``<primary>_mean_s``/``<pair>_mean_s``
        alongside a min-based estimate; ``"stddev"`` records
        ``<primary>_stddev_s``; ``None`` records nothing extra.
    suite:
        The human-readable suite description embedded in the JSON.
    """

    kernel_prefix: str
    pair_suffix: str
    primary: str
    pair: str
    stat: str
    extra: str | None
    suite: str


def paired_summary(
    spec: PairedBenchSpec,
    stats: dict[str, dict[str, float]],
    baseline: dict[str, dict] | None = None,
) -> dict:
    """Reduce one run's kernel pairs to the spec's summary layout."""
    benchmarks = {}
    for name, primary in stats.items():
        if name.endswith(spec.pair_suffix) or not name.startswith(
            spec.kernel_prefix
        ):
            continue
        entry = {f"{spec.primary}_s": round(primary[spec.stat], 5)}
        if spec.extra == "stddev":
            entry[f"{spec.primary}_stddev_s"] = round(primary["stddev_s"], 5)
        elif spec.extra == "mean":
            entry[f"{spec.primary}_mean_s"] = round(primary["mean_s"], 5)
        pair = stats.get(name + spec.pair_suffix)
        if pair is not None:
            entry[f"{spec.pair}_s"] = round(pair[spec.stat], 5)
            if spec.extra == "mean":
                entry[f"{spec.pair}_mean_s"] = round(pair["mean_s"], 5)
            if primary[spec.stat] > 0:
                entry["speedup"] = round(pair[spec.stat] / primary[spec.stat], 2)
        if baseline is not None and name in baseline:
            recorded = baseline[name].get(f"{spec.primary}_s")
            if recorded and primary[spec.stat] > 0:
                entry[f"baseline_{spec.primary}_s"] = recorded
                entry["vs_baseline"] = round(recorded / primary[spec.stat], 2)
        benchmarks[name] = entry
    return {
        "suite": spec.suite,
        "python": platform.python_version(),
        "benchmarks": benchmarks,
    }


def print_paired_summary(spec: PairedBenchSpec, summary: dict) -> None:
    """One stdout line per kernel, as the record scripts always printed."""
    for name, entry in sorted(summary["benchmarks"].items()):
        ratio = f' ({entry["speedup"]}x)' if "speedup" in entry else ""
        drift = (
            f' [vs baseline {entry["vs_baseline"]}x]'
            if "vs_baseline" in entry
            else ""
        )
        print(f'{name}: {entry[f"{spec.primary}_s"]}s{ratio}{drift}')


def paired_main(
    spec: PairedBenchSpec,
    description: str,
    default_out: str,
    argv: list[str] | None = None,
) -> int:
    """The shared ``--run [--baseline] --out`` CLI of paired recorders."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--run", required=True, help="pytest-benchmark json of a run"
    )
    parser.add_argument(
        "--baseline", help=f"checked-in {default_out} to diff against"
    )
    parser.add_argument("--out", default=default_out, help="output path")
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)["benchmarks"]
    summary = paired_summary(spec, load_stats(args.run), baseline)
    write_summary(summary, args.out)
    print_paired_summary(spec, summary)
    return 0
