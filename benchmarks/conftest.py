"""Shared benchmark configuration.

Every ``bench_*`` file regenerates one experiment (table or figure) of
README.md ("Experiments"): the benchmarked callable *is* the experiment runner
(quick grids), so ``pytest benchmarks/ --benchmark-only`` both times the
pipelines and prints each regenerated table; micro-benchmarks of the hot
kernels accompany them.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import ExperimentConfig


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """Deterministic quick-mode config used by all table benchmarks."""
    return ExperimentConfig(seed=0, quick=True)


def emit(result) -> None:
    """Print a regenerated experiment table beneath the benchmark output."""
    print()
    print(result.to_markdown())
