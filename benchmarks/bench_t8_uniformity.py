"""T8 — the k=1 special case vs the GR00 uniformity tester."""

from __future__ import annotations

from conftest import emit

from repro.core.uniformity import test_uniformity as uniformity_test
from repro.distributions import families
from repro.experiments.ablations import run_t8


def test_t8_table(benchmark, quick_config):
    """Regenerate T8; both testers must meet their targets."""
    result = benchmark.pedantic(run_t8, args=(quick_config,), rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        rate, target = row[3], row[4]
        if target == ">= 2/3":
            assert rate >= 2 / 3
        else:
            assert rate <= 1 / 3


def test_uniformity_kernel(benchmark):
    """Micro: one GR00 uniformity test at n=65536."""
    dist = families.uniform(65536)
    benchmark(lambda: uniformity_test(dist, 65536, 0.25, rng=1))
