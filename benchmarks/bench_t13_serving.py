"""T13 — serving: coalesced vs request-at-a-time on a skewed workload.

The serving claim (README.md, "Serving"): replaying the seeded
64-stream refresh-storm workload through :class:`repro.serving.HistogramService`
with coalescing on (``max_batch`` deep admission windows folded into
fleet batch ops) must beat the request-at-a-time reference
(``max_batch=1`` — the *same* code path, windows of one) on
throughput, byte-identical responses included.  Kernels come in
``<name>`` / ``<name>_serial`` pairs that feed ``BENCH_serve.json``
via ``benchmarks/record_serving_bench.py``; each kernel's replay
report (p50/p99 latency, throughput) rides along as
``extra_info``.

The workload (``repro.serving.WorkloadConfig``): Pareto-skewed
popularity over 64 streams, periodic refresh storms (an ingest wave
over a popularity-sampled cohort, then a probe wave re-probing it —
mostly ``min_k`` sweeps, some ``test`` / ``uniformity``), closed-loop
replay with enough concurrent clients to keep admission windows full.
Learn chains are pinned off here: ``learn`` is batch-neutral (greedy
rounds dominate; nothing amortises across members), so it measures
the same in both modes and only dilutes the pair — the conformance
suite, not the bench, covers it.

Set ``REPRO_BENCH_SMOKE=1`` for the CI-sized workload (8 streams,
tiny trace, ``max_batch=16``) — same code, minutes down to seconds.
"""

from __future__ import annotations

import asyncio
import os
from functools import lru_cache

from repro.serving import (
    HistogramService,
    ServiceConfig,
    WorkloadConfig,
    WorkloadGenerator,
    replay,
)
from repro.utils.faults import FaultPlan

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

if SMOKE:
    STREAMS, REQUESTS, CLIENTS, MAX_BATCH = 8, 64, 16, 16
    WARMUP_BATCH = 512
else:
    STREAMS, REQUESTS, CLIENTS, MAX_BATCH = 64, 768, 160, 160
    WARMUP_BATCH = 4096

WORKLOAD = WorkloadConfig(
    streams=STREAMS,
    requests=REQUESTS,
    seed=0,
    n=4_096,
    k=8,
    epsilon=0.3,
    mix=(
        ("ingest", 2.0),
        ("test", 1.5),
        ("min_k", 8.0),
        ("uniformity", 0.3),
        ("selectivity", 0.0),
        ("learn", 0.0),
    ),
    alpha=1.2,
    l1_fraction=0.0,
    chain_after_test=0.0,
    burst_every=160,
    burst_len=128,
    ingest_batch=48,
    warmup_batch=WARMUP_BATCH,
)


@lru_cache(maxsize=None)
def _trace():
    """The seeded event list (cached; both kernels replay the same)."""
    return WorkloadGenerator(WORKLOAD).trace()


def _replay(max_batch: int, *, workers: int = 1, faults=None, max_respawns=None):
    """One full replay through a fresh service at the given window.

    Returns ``(report, health)`` — the replay report plus the service's
    closing health snapshot (executor respawn/degradation history when
    the service owns a pool, for the chaos kernel's extra_info).
    """

    async def run():
        service = HistogramService(
            WorkloadGenerator(WORKLOAD).stream_names,
            WORKLOAD.n,
            WORKLOAD.k,
            WORKLOAD.epsilon,
            config=ServiceConfig(
                max_batch=max_batch, max_linger_us=500.0, max_queue=4_096
            ),
            workers=workers,
            faults=faults,
            max_respawns=max_respawns,
            rng=WORKLOAD.seed,
        )
        async with service:
            report = await replay(service, _trace(), clients=CLIENTS)
            return report, service.health()

    return asyncio.run(run())


def _record(benchmark, report) -> None:
    benchmark.extra_info["p50_us"] = round(report.p50_us, 1)
    benchmark.extra_info["p99_us"] = round(report.p99_us, 1)
    benchmark.extra_info["throughput_rps"] = round(report.throughput_rps, 1)


def test_serve_storm_64(benchmark):
    """The skewed storm workload, coalesced (the headline kernel)."""
    report, _ = benchmark.pedantic(
        lambda: _replay(MAX_BATCH), rounds=3, iterations=1, warmup_rounds=1
    )
    _record(benchmark, report)
    assert report.ok == report.requests  # every request answered, no errors


def test_serve_storm_64_serial(benchmark):
    """The same workload request-at-a-time (``max_batch=1``)."""
    report, _ = benchmark.pedantic(
        lambda: _replay(1), rounds=3, iterations=1, warmup_rounds=1
    )
    _record(benchmark, report)
    assert report.ok == report.requests


def test_serve_storm_64_chaos(benchmark):
    """The coalesced storm under worker kills: zero failed requests.

    The service owns a two-worker pool and a seeded :class:`FaultPlan`
    SIGKILLs workers on a fixed task cadence — each kill breaks a pool
    mid-batch, the executor respawns it and re-issues the batch, and
    every response must still come back ``ok`` (the recovery rungs are
    byte-identity-pinned by the conformance suite; this kernel prices
    them and proves the storm absorbs real worker deaths end to end).
    No ``_serial`` pair: the datapoint is availability + recovery cost,
    not a speedup.
    """

    def run():
        # Plans are stateful counters — each round gets a fresh one so
        # the kill cadence replays identically every round.
        return _replay(
            MAX_BATCH,
            workers=2,
            faults=FaultPlan(seed=0, kill_at=[0], kill_every=40, kill_limit=3),
            max_respawns=8,
        )

    report, health = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    _record(benchmark, report)
    executor = health["executor"]
    benchmark.extra_info["worker_crashes"] = executor["worker_crashes"]
    benchmark.extra_info["respawns"] = executor["respawns"]
    benchmark.extra_info["retried_tasks"] = executor["retried_tasks"]
    benchmark.extra_info["degraded"] = executor["degraded"]
    assert report.ok == report.requests  # kills never surface to clients
    if not SMOKE:  # the smoke trace is too short to guarantee a strike
        assert executor["worker_crashes"] >= 1
