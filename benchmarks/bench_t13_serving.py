"""T13 — serving: coalesced vs request-at-a-time on a skewed workload.

The serving claim (README.md, "Serving"): replaying the seeded
64-stream refresh-storm workload through :class:`repro.serving.HistogramService`
with coalescing on (``max_batch`` deep admission windows folded into
fleet batch ops) must beat the request-at-a-time reference
(``max_batch=1`` — the *same* code path, windows of one) on
throughput, byte-identical responses included.  Kernels come in
``<name>`` / ``<name>_serial`` pairs that feed ``BENCH_serve.json``
via ``benchmarks/record_serving_bench.py``; each kernel's replay
report (p50/p99 latency, throughput) rides along as
``extra_info``.

The second claim (same README section): on the *re-query* workload —
dashboard-style clients replaying recent probes (``requery_bias``)
against rarely-mutated streams at low client concurrency — the
generation-keyed response cache must beat the uncached coalesced
service.  Low concurrency is the regime the cache exists for: with
few requests in flight the coalescer cannot form deep windows, so
every repeat probe queued uncached pays the full per-window cost
(linger, batch planning, a memoised fleet probe) that a cache hit
answers at admission.  The pair holds every serving knob fixed and
varies only ``cache_capacity`` (the ``_serial`` twin runs cache-off,
*not* request-at-a-time); acceptance bar: >= 1.5x.  Hits are
byte-identical to cold executions (pinned by the conformance suite's
cache axis), so the speedup is pure avoided work.

The workload (``repro.serving.WorkloadConfig``): Pareto-skewed
popularity over 64 streams, periodic refresh storms (an ingest wave
over a popularity-sampled cohort, then a probe wave re-probing it —
mostly ``min_k`` sweeps, some ``test`` / ``uniformity``), closed-loop
replay with enough concurrent clients to keep admission windows full.
Learn chains are pinned off here: ``learn`` is batch-neutral (greedy
rounds dominate; nothing amortises across members), so it measures
the same in both modes and only dilutes the pair — the conformance
suite, not the bench, covers it.

Set ``REPRO_BENCH_SMOKE=1`` for the CI-sized workload (8 streams,
tiny trace, ``max_batch=16``) — same code, minutes down to seconds.
"""

from __future__ import annotations

import asyncio
import os
from functools import lru_cache

from repro.serving import (
    HistogramService,
    ServiceConfig,
    WorkloadConfig,
    WorkloadGenerator,
    replay,
)
from repro.utils.faults import FaultPlan

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

if SMOKE:
    STREAMS, REQUESTS, CLIENTS, MAX_BATCH = 8, 64, 16, 16
    WARMUP_BATCH = 512
else:
    STREAMS, REQUESTS, CLIENTS, MAX_BATCH = 64, 768, 160, 160
    WARMUP_BATCH = 4096

WORKLOAD = WorkloadConfig(
    streams=STREAMS,
    requests=REQUESTS,
    seed=0,
    n=4_096,
    k=8,
    epsilon=0.3,
    mix=(
        ("ingest", 2.0),
        ("test", 1.5),
        ("min_k", 8.0),
        ("uniformity", 0.3),
        ("selectivity", 0.0),
        ("learn", 0.0),
    ),
    alpha=1.2,
    l1_fraction=0.0,
    chain_after_test=0.0,
    burst_every=160,
    burst_len=128,
    ingest_batch=48,
    warmup_batch=WARMUP_BATCH,
)

# The re-query workload: mostly probes replaying a recently issued one
# (``requery_bias``) against rarely-mutated streams — dashboard-style
# repeat read traffic, replayed by a handful of closed-loop clients so
# admission windows stay shallow and per-window cost is on the request
# path.  Selectivity joins the mix so range probes are cached too;
# ingests stay in, at a low weight and with rare short storms (a
# replayed probe racing a mutation on its stream must fence, not go
# stale, and every mutation re-opens the compile/learn path both twins
# pay).  The domain is smaller than the storm's: the pair prices the
# serving layer on memoised repeat traffic, not member compiles.
if SMOKE:
    REQUERY_REQUESTS, REQUERY_BURST_EVERY, REQUERY_BURST_LEN = 1_024, 512, 16
else:
    REQUERY_REQUESTS, REQUERY_BURST_EVERY, REQUERY_BURST_LEN = 4_096, 1_024, 32
REQUERY_CLIENTS = 4

REQUERY_WORKLOAD = WorkloadConfig(
    streams=STREAMS,
    requests=REQUERY_REQUESTS,
    seed=1,
    n=1_024,
    k=8,
    epsilon=0.3,
    mix=(
        ("ingest", 0.3),
        ("test", 1.5),
        ("min_k", 8.0),
        ("uniformity", 0.3),
        ("selectivity", 1.2),
        ("learn", 0.0),
    ),
    alpha=1.2,
    l1_fraction=0.0,
    chain_after_test=0.0,
    requery_bias=0.85,
    burst_every=REQUERY_BURST_EVERY,
    burst_len=REQUERY_BURST_LEN,
    ingest_batch=48,
    warmup_batch=512 if SMOKE else 1_024,
)

_WORKLOADS = {"storm": WORKLOAD, "requery": REQUERY_WORKLOAD}


@lru_cache(maxsize=None)
def _trace(workload: str = "storm"):
    """The seeded event list (cached; each pair replays the same)."""
    return WorkloadGenerator(_WORKLOADS[workload]).trace()


def _replay(
    max_batch: int,
    *,
    workload: str = "storm",
    cache_capacity: int = 0,
    clients: int | None = None,
    workers: int = 1,
    faults=None,
    max_respawns=None,
):
    """One full replay through a fresh service at the given window.

    Returns ``(report, health, stats)`` — the replay report plus the
    service's closing health snapshot (executor respawn/degradation
    history when the service owns a pool, for the chaos kernel's
    extra_info) and its counters (cache hits/misses for the requery
    pair).  The storm kernels pin ``cache_capacity=0`` so they keep
    measuring coalescing alone; the requery pair varies only the cache.
    """
    config = _WORKLOADS[workload]

    async def run():
        service = HistogramService(
            WorkloadGenerator(config).stream_names,
            config.n,
            config.k,
            config.epsilon,
            config=ServiceConfig(
                max_batch=max_batch,
                max_linger_us=500.0,
                max_queue=4_096,
                cache_capacity=cache_capacity,
            ),
            workers=workers,
            faults=faults,
            max_respawns=max_respawns,
            rng=config.seed,
        )
        async with service:
            report = await replay(
                service,
                _trace(workload),
                clients=CLIENTS if clients is None else clients,
            )
            return report, service.health(), dict(service.stats)

    return asyncio.run(run())


def _record(benchmark, report) -> None:
    benchmark.extra_info["p50_us"] = round(report.p50_us, 1)
    benchmark.extra_info["p99_us"] = round(report.p99_us, 1)
    benchmark.extra_info["throughput_rps"] = round(report.throughput_rps, 1)


def test_serve_storm_64(benchmark):
    """The skewed storm workload, coalesced (the headline kernel)."""
    report, _, _ = benchmark.pedantic(
        lambda: _replay(MAX_BATCH), rounds=3, iterations=1, warmup_rounds=1
    )
    _record(benchmark, report)
    assert report.ok == report.requests  # every request answered, no errors


def test_serve_storm_64_serial(benchmark):
    """The same workload request-at-a-time (``max_batch=1``)."""
    report, _, _ = benchmark.pedantic(
        lambda: _replay(1), rounds=3, iterations=1, warmup_rounds=1
    )
    _record(benchmark, report)
    assert report.ok == report.requests


def test_serve_requery_64(benchmark):
    """The re-query workload with the response cache on.

    Same coalescing window and client count as its ``_serial`` twin;
    the only knob that differs is ``cache_capacity`` — the speedup is
    repeat probes answered at admission instead of queued through an
    admission window.
    """
    report, _, stats = benchmark.pedantic(
        lambda: _replay(
            MAX_BATCH,
            workload="requery",
            cache_capacity=8_192,
            clients=REQUERY_CLIENTS,
        ),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    _record(benchmark, report)
    lookups = stats["cache_hits"] + stats["cache_misses"]
    benchmark.extra_info["cache_hits"] = stats["cache_hits"]
    benchmark.extra_info["cache_hit_rate"] = round(
        stats["cache_hits"] / max(lookups, 1), 3
    )
    assert report.ok == report.requests
    assert stats["cache_hits"] > 0


def test_serve_requery_64_serial(benchmark):
    """The same re-query workload, same windows and clients, cache off.

    The ``_serial`` suffix is the recorder's pairing convention; here
    the twin disables the *cache* (``cache_capacity=0``), not
    coalescing — both kernels run the full admission window.
    """
    report, _, stats = benchmark.pedantic(
        lambda: _replay(
            MAX_BATCH,
            workload="requery",
            cache_capacity=0,
            clients=REQUERY_CLIENTS,
        ),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    _record(benchmark, report)
    assert report.ok == report.requests
    assert stats["cache_hits"] == 0


def test_serve_storm_64_chaos(benchmark):
    """The coalesced storm under worker kills: zero failed requests.

    The service owns a two-worker pool and a seeded :class:`FaultPlan`
    SIGKILLs workers on a fixed task cadence — each kill breaks a pool
    mid-batch, the executor respawns it and re-issues the batch, and
    every response must still come back ``ok`` (the recovery rungs are
    byte-identity-pinned by the conformance suite; this kernel prices
    them and proves the storm absorbs real worker deaths end to end).
    No ``_serial`` pair: the datapoint is availability + recovery cost,
    not a speedup.
    """

    def run():
        # Plans are stateful counters — each round gets a fresh one so
        # the kill cadence replays identically every round.
        return _replay(
            MAX_BATCH,
            workers=2,
            faults=FaultPlan(seed=0, kill_at=[0], kill_every=40, kill_limit=3),
            max_respawns=8,
        )

    report, health, _ = benchmark.pedantic(
        run, rounds=3, iterations=1, warmup_rounds=1
    )
    _record(benchmark, report)
    executor = health["executor"]
    benchmark.extra_info["worker_crashes"] = executor["worker_crashes"]
    benchmark.extra_info["respawns"] = executor["respawns"]
    benchmark.extra_info["retried_tasks"] = executor["retried_tasks"]
    benchmark.extra_info["degraded"] = executor["degraded"]
    assert report.ok == report.requests  # kills never surface to clients
    if not SMOKE:  # the smoke trace is too short to guarantee a strike
        assert executor["worker_crashes"] >= 1
