"""F4 — the Theorem 5 Omega(sqrt(kn)) transition."""

from __future__ import annotations

import math

from conftest import emit

from repro.core.lower_bound import collision_distinguisher, no_instance
from repro.experiments.lowerbound import run_f4


def test_f4_curve(benchmark, quick_config):
    """Regenerate F4; success must rise from near-chance to near-perfect."""
    result = benchmark.pedantic(run_f4, args=(quick_config,), rounds=1, iterations=1)
    emit(result)
    for n, k in {(row[0], row[1]) for row in result.rows}:
        series = [row for row in result.rows if row[0] == n and row[1] == k]
        series.sort(key=lambda row: row[2])
        assert series[0][4] <= 0.8  # little signal below sqrt(kn)
        assert series[-1][4] >= 0.8  # strong signal above


def test_distinguisher_kernel(benchmark):
    """Micro: one distinguisher call at m = 4 sqrt(kn)."""
    n, k = 4096, 8
    dist = no_instance(n, k, rng=1)
    m = int(4 * math.sqrt(k * n))
    samples = dist.sample(m, 2)
    benchmark(lambda: collision_distinguisher(samples, n, k))
