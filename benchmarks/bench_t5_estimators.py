"""T5 — collision-estimator concentration and throughput."""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.distributions import families
from repro.experiments.estimators_exp import run_t5
from repro.samples.collision import CollisionSketch
from repro.samples.estimators import MultiSketch


def test_t5_table(benchmark, quick_config):
    """Regenerate T5; Lemma 1's 3/4 within-bound rate must hold."""
    result = benchmark.pedantic(run_t5, args=(quick_config,), rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        if row[1] == "Lemma1 single":
            assert row[2] >= 0.6  # claimed > 3/4; generous slack for quick mode


def test_sketch_build_kernel(benchmark):
    """Micro: building a collision sketch from 10^6 samples."""
    samples = families.zipf(4096, 1.0).sample(1_000_000, 3)
    benchmark(lambda: CollisionSketch(samples, 4096))


def test_median_query_kernel(benchmark):
    """Micro: 10k vectorised median-of-9 interval queries."""
    dist = families.zipf(4096, 1.0)
    multi = MultiSketch.from_sample_sets(dist.sample_sets(9, 100_000, 4), 4096)
    starts = np.random.default_rng(5).integers(0, 2048, size=10_000)
    stops = starts + 1024
    benchmark(lambda: multi.median_conditional_norm(starts, stops))
