"""T6 — the selectivity-estimation application."""

from __future__ import annotations

from conftest import emit

from repro.baselines.voptimal import voptimal_from_samples
from repro.datasets.synthetic import salaries_column
from repro.experiments.selectivity_exp import run_t6
from repro.histograms.intervals import Interval
from repro.queries.selectivity import SelectivityEstimator


def test_t6_table(benchmark, quick_config):
    """Regenerate T6; sample-efficient summaries must beat equi-width."""
    result = benchmark.pedantic(run_t6, args=(quick_config,), rounds=1, iterations=1)
    emit(result)
    by_estimator = {row[1]: row[3] for row in result.rows}
    assert by_estimator["v-optimal plug-in"] <= by_estimator["equi-depth"]


def test_query_kernel(benchmark):
    """Micro: 10k range-mass queries against a 16-piece summary."""
    values, n = salaries_column(50_000, rng=1)
    hist = voptimal_from_samples(values[:10_000], n, 16)
    estimator = SelectivityEstimator(hist)
    queries = [Interval(i % (n - 64), i % (n - 64) + 64) for i in range(10_000)]
    benchmark(lambda: estimator.estimate_many(queries))
