"""T2 — fast greedy (Theorem 2) vs exhaustive.

The kernel benchmarks track the incremental scoring engine
(README.md, "Incremental scoring"): ``test_fast_greedy_kernel_large``
is the headline grid point — millions of candidates over many rounds,
where dirty-region rescoring pays — and feeds ``BENCH_greedy.json``
(see ``benchmarks/record_greedy_bench.py``).
"""

from __future__ import annotations

from conftest import emit

from repro.core.greedy import learn_histogram
from repro.core.params import GreedyParams
from repro.distributions import families
from repro.experiments.learning import run_t2

LARGE_N = 8_192
LARGE_PARAMS = GreedyParams(
    weight_sample_size=2_500,
    collision_sets=9,
    collision_set_size=2_500,
    rounds=12,
)


def test_t2_table(benchmark, quick_config):
    """Regenerate the T2 table; fast excess must stay within 8 eps."""
    result = benchmark.pedantic(run_t2, args=(quick_config,), rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        assert row[2] <= row[4]  # excess fast <= bound 8 eps

def test_fast_greedy_kernel(benchmark):
    """Micro: one fast learn on n=512 (sample-endpoint candidates)."""
    dist = families.zipf(512, 1.0)
    benchmark(
        lambda: learn_histogram(dist, 512, 4, 0.25, method="fast", scale=0.02, rng=1)
    )


def test_fast_greedy_kernel_large(benchmark):
    """Macro: the largest grid point — ~2.4M candidates, 12 rounds."""
    dist = families.zipf(LARGE_N, 1.0)
    result = benchmark.pedantic(
        lambda: learn_histogram(
            dist, LARGE_N, 8, 0.2, method="fast", params=LARGE_PARAMS, rng=1
        ),
        rounds=1,
        iterations=1,
    )
    assert result.num_candidates > 1_000_000


def test_exhaustive_greedy_kernel(benchmark):
    """Macro: one exhaustive learn (Algorithm 1) on n=512, C(n+1, 2) candidates."""
    dist = families.zipf(512, 1.0)
    result = benchmark.pedantic(
        lambda: learn_histogram(
            dist, 512, 4, 0.25, method="exhaustive", scale=0.02, rng=1
        ),
        rounds=1,
        iterations=1,
    )
    assert result.num_candidates == 512 * 513 // 2
