"""T2 — fast greedy (Theorem 2) vs exhaustive."""

from __future__ import annotations

from conftest import emit

from repro.core.greedy import learn_histogram
from repro.distributions import families
from repro.experiments.learning import run_t2


def test_t2_table(benchmark, quick_config):
    """Regenerate the T2 table; fast excess must stay within 8 eps."""
    result = benchmark.pedantic(run_t2, args=(quick_config,), rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        assert row[2] <= row[4]  # excess fast <= bound 8 eps

def test_fast_greedy_kernel(benchmark):
    """Micro: one fast learn on n=512 (sample-endpoint candidates)."""
    dist = families.zipf(512, 1.0)
    benchmark(
        lambda: learn_histogram(dist, 512, 4, 0.25, method="fast", scale=0.02, rng=1)
    )
