"""F1 — learning error vs sample budget."""

from __future__ import annotations

from conftest import emit

from repro.experiments.learning import run_f1


def test_f1_curve(benchmark, quick_config):
    """Regenerate the F1 curve; error must not grow with the budget."""
    result = benchmark.pedantic(run_f1, args=(quick_config,), rounds=1, iterations=1)
    emit(result)
    errors = [row[2] for row in result.rows]
    # Largest budget should do at least as well as the smallest.
    assert errors[-1] <= errors[0] + 1e-6
