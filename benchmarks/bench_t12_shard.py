"""T12 — the parallel shard engine: executor-driven fleets and sessions.

Three claims ride the ``ShardedSketch`` + :class:`~repro.api.ParallelExecutor`
engine and the lockstep learner (README.md, "Architecture"):

* ``test_shard_serving_64`` / ``_loop`` — the tester headline: the
  64-stream serving sweep of ``bench_t11_fleet`` driven through a fleet
  with a ``workers=4`` executor (member compiles fanned over
  shared-memory slabs) must beat the looped-session baseline by >= 2x
  while returning byte-identical results (recorded 2.3-2.8x depending
  on machine load).
* ``test_shard_learn_outofcore`` / ``_loop`` — one session, an
  out-of-core-scale pooled budget (~1M collision samples over a 64k
  domain), a high-``k`` learn grid: the lockstep engine (sharded
  compile + cached per-grid-point score terms refreshed only over each
  round's dirty span) must beat the incremental engine — which
  re-tabulates the full grid and re-runs both full-grid searchsorteds
  every round — by >= 2x, byte-identically.  This is the pair that
  closed the sharded-learn gap: the compile-only shard path recorded
  1.04x here.
* ``test_shard_learn_fleet_64`` / ``_loop`` — the fleet headline: 64
  members learning a 2-point grid through one ``learn_many`` lockstep
  (all members' rounds advanced together, early-converging runs
  dropping out of the active mask) vs 64 looped incremental sessions,
  >= 2x at ``workers=4``, cold compile included.

Kernels come in ``<name>`` / ``<name>_loop`` pairs that feed
``BENCH_shard.json`` via ``benchmarks/record_shard_bench.py``; CI runs
the learn pairs through ``benchmarks/perf_guard.py`` (within-run pair
speedup >= 1.5x at smoke size).

Set ``REPRO_BENCH_SMOKE=1`` for the CI-sized workload (8 streams,
shrunk pools) — same code and same pairing, minutes down to seconds.
"""

from __future__ import annotations

import atexit
import os
from functools import lru_cache

import numpy as np

from repro.api import (
    ArraySource,
    HistogramFleet,
    HistogramSession,
    ParallelExecutor,
    ShardPlan,
)
from repro.core.params import GreedyParams, TesterParams
from repro.distributions import families

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N = 4_096
FLEET_SIZE = 8 if SMOKE else 64
STREAM_LENGTH = 20_000 if SMOKE else 100_000
TEST_PARAMS = (
    TesterParams(num_sets=7, set_size=3_000)
    if SMOKE
    else TesterParams(num_sets=15, set_size=8_000)
)
L2_GRID = [
    (k, eps)
    for k in (4, 8)
    for eps in (0.2, 0.225, 0.25, 0.275, 0.3, 0.325, 0.35, 0.375)
]
L1_GRID = [(k, eps) for k in (4, 8) for eps in (0.2, 0.25, 0.3, 0.35)]
_SEEDS = list(range(FLEET_SIZE))

# One pool for the whole module: the serving plane keeps its workers
# hot across sweeps (pool spin-up happens inside the warmup round).
EXECUTOR = ParallelExecutor(4, plan=ShardPlan(4))
atexit.register(EXECUTOR.close)

# The out-of-core learn pair: a wide domain so the greedy grid is large
# (the incremental engine's per-round cost is a full-grid tabulation
# plus two full-grid searchsorteds), a high-k grid so most rounds touch
# a small dirty span, and a candidate cap that keeps the (shared)
# dirty-candidate rescore from drowning the per-round differential.
if SMOKE:
    OOC_N, OOC_STREAM, OOC_MAX_CANDIDATES = 16_384, 40_000, 25_000
    OOC_PARAMS = GreedyParams(
        weight_sample_size=75_000,
        collision_sets=5,
        collision_set_size=40_000,
        rounds=2,
    )
else:
    OOC_N, OOC_STREAM, OOC_MAX_CANDIDATES = 65_536, 120_000, 100_000
    OOC_PARAMS = GreedyParams(
        weight_sample_size=300_000,
        collision_sets=5,
        collision_set_size=150_000,
        rounds=2,
    )
OOC_GRID = [(16, 0.25), (24, 0.2), (32, 0.25), (48, 0.25)]

# The fleet learn pair: near-uniform streams maximise distinct grid
# endpoints per member, so every looped incremental session pays the
# full-grid round cost the fleet lockstep amortises away.
LEARN_N = 16_384
LEARN_GRID = [(16, 0.25), (32, 0.25)]
if SMOKE:
    LEARN_STREAM, LEARN_MAX_CANDIDATES = 15_000, 8_000
    LEARN_PARAMS = GreedyParams(
        weight_sample_size=15_000,
        collision_sets=7,
        collision_set_size=4_000,
        rounds=2,
    )
else:
    LEARN_STREAM, LEARN_MAX_CANDIDATES = 30_000, 16_000
    LEARN_PARAMS = GreedyParams(
        weight_sample_size=30_000,
        collision_sets=7,
        collision_set_size=8_000,
        rounds=2,
    )


@lru_cache(maxsize=None)
def _sources() -> tuple[ArraySource, ...]:
    """Bootstrap streams: observed columns of a zipf base (cached;
    both kernels of a pair serve the same streams)."""
    base = families.zipf(N, 1.0)
    return tuple(
        ArraySource(base.sample(STREAM_LENGTH, np.random.default_rng(1_000 + f)), N)
        for f in range(FLEET_SIZE)
    )


@lru_cache(maxsize=None)
def _ooc_source() -> ArraySource:
    """One wide column for the out-of-core learn pair."""
    base = families.zipf(OOC_N, 1.0)
    return ArraySource(base.sample(OOC_STREAM, np.random.default_rng(5_000)), OOC_N)


@lru_cache(maxsize=None)
def _learn_sources() -> tuple[ArraySource, ...]:
    """Near-uniform streams for the fleet learn pair."""
    base = families.zipf(LEARN_N, 0.5)
    return tuple(
        ArraySource(
            base.sample(LEARN_STREAM, np.random.default_rng(2_000 + f)), LEARN_N
        )
        for f in range(FLEET_SIZE)
    )


def _serving_shard():
    """The t11 tester sweep through one executor-driven fleet."""
    fleet = HistogramFleet(
        _sources(), N, rngs=_SEEDS, test_budget=TEST_PARAMS, executor=EXECUTOR
    )
    l2 = fleet.test_many(L2_GRID, norm="l2")
    l1 = fleet.test_many(L1_GRID, norm="l1")
    min_k_l2 = fleet.min_k(0.3, max_k=8, norm="l2")
    min_k_l1 = fleet.min_k(0.3, max_k=8, norm="l1")
    return l2, l1, min_k_l2, min_k_l1


def _serving_loop():
    """The same sweep, one fresh serial session per stream."""
    l2, l1, min_k_l2, min_k_l1 = [], [], [], []
    for source, seed in zip(_sources(), _SEEDS):
        session = HistogramSession(source, N, rng=seed, test_budget=TEST_PARAMS)
        l2.append(session.test_many(L2_GRID, norm="l2"))
        l1.append(session.test_many(L1_GRID, norm="l1"))
        min_k_l2.append(session.min_k(0.3, max_k=8, norm="l2"))
        min_k_l1.append(session.min_k(0.3, max_k=8, norm="l1"))
    return l2, l1, min_k_l2, min_k_l1


def _learn_shard():
    """The high-k grid through the lockstep engine (sharded compile +
    cached score terms), one fresh session per call."""
    session = HistogramSession(
        _ooc_source(),
        OOC_N,
        rng=0,
        engine="lockstep",
        learn_budget=OOC_PARAMS,
        executor=EXECUTOR,
    )
    return session.learn_many(OOC_GRID, max_candidates=OOC_MAX_CANDIDATES)


def _learn_loop():
    """The same grid through the serial incremental engine."""
    session = HistogramSession(
        _ooc_source(), OOC_N, rng=0, engine="incremental", learn_budget=OOC_PARAMS
    )
    return session.learn_many(OOC_GRID, max_candidates=OOC_MAX_CANDIDATES)


def _learn_fleet():
    """64 members x 2 grid points as one ``learn_many`` lockstep."""
    fleet = HistogramFleet(
        _learn_sources(),
        LEARN_N,
        rngs=_SEEDS,
        engine="lockstep",
        learn_budget=LEARN_PARAMS,
        executor=EXECUTOR,
    )
    return fleet.learn_many(LEARN_GRID, max_candidates=LEARN_MAX_CANDIDATES)


def _learn_fleet_loop():
    """The same grid, one fresh incremental session per member."""
    return [
        HistogramSession(
            source,
            LEARN_N,
            rng=seed,
            engine="incremental",
            learn_budget=LEARN_PARAMS,
        ).learn_many(LEARN_GRID, max_candidates=LEARN_MAX_CANDIDATES)
        for source, seed in zip(_learn_sources(), _SEEDS)
    ]


def _assert_same_histograms(results, reference):
    for result, expected in zip(results, reference):
        assert np.array_equal(result.histogram.values, expected.histogram.values)
        assert np.array_equal(
            result.histogram.boundaries, expected.histogram.boundaries
        )


def test_shard_serving_64(benchmark):
    """64-stream sweep, workers=4 executor (bar: >= 2x over the loop)."""
    results = benchmark.pedantic(
        _serving_shard, rounds=4, iterations=1, warmup_rounds=1
    )
    assert results == _serving_loop()  # byte-identical verdicts and logs


def test_shard_serving_64_loop(benchmark):
    """The looped-session baseline for the 64-stream sweep."""
    results = benchmark.pedantic(
        _serving_loop, rounds=4, iterations=1, warmup_rounds=1
    )
    assert len(results[0]) == FLEET_SIZE


def test_shard_learn_outofcore(benchmark):
    """Out-of-core-scale learn grid through the lockstep engine
    (bar: >= 2x over the incremental loop)."""
    results = benchmark.pedantic(
        _learn_shard, rounds=2, iterations=1, warmup_rounds=1
    )
    _assert_same_histograms(results, _learn_loop())


def test_shard_learn_outofcore_loop(benchmark):
    """The incremental-engine baseline for the out-of-core learn grid."""
    results = benchmark.pedantic(
        _learn_loop, rounds=2, iterations=1, warmup_rounds=1
    )
    assert len(results) == len(OOC_GRID)


def test_shard_learn_fleet_64(benchmark):
    """64-member ``learn_many`` lockstep, workers=4, cold compile
    included (bar: >= 2x over the looped sessions)."""
    results = benchmark.pedantic(
        _learn_fleet, rounds=2, iterations=1, warmup_rounds=1
    )
    for member, reference in zip(results, _learn_fleet_loop()):
        _assert_same_histograms(member, reference)


def test_shard_learn_fleet_64_loop(benchmark):
    """The looped incremental-session baseline for the fleet learn."""
    results = benchmark.pedantic(
        _learn_fleet_loop, rounds=2, iterations=1, warmup_rounds=1
    )
    assert len(results) == FLEET_SIZE
