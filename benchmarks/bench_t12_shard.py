"""T12 — the parallel shard engine: executor-driven fleets and sessions.

Two claims ride the ``ShardedSketch`` + :class:`~repro.api.ParallelExecutor`
engine (README.md, "Architecture"):

* ``test_shard_serving_64`` / ``_loop`` — the headline pair: the
  64-stream tester serving sweep of ``bench_t11_fleet`` driven through
  a fleet with a ``workers=4`` executor (member compiles fanned over
  shared-memory slabs) must beat the looped-session baseline by >= 2.5x
  while returning byte-identical results.  The executor is module-level
  — a serving plane keeps one worker pool across sweeps — but each
  measured call still compiles its fleet cold, exactly like the t11
  pair.
* ``test_shard_learn_outofcore`` / ``_loop`` — an out-of-core-scale
  learn (millions of pooled samples): the sharded compile sorts
  bounded per-shard buffers and materialises only the ``(G, r)`` gather
  slab whole, and must stay at parity with the monolithic sort while
  returning the identical histogram.  (On a single-core CI box parity
  is the bar; the shard path's win is the bounded working set.)

Kernels come in ``<name>`` / ``<name>_loop`` pairs that feed
``BENCH_shard.json`` via ``benchmarks/record_shard_bench.py``.
"""

from __future__ import annotations

import atexit
from functools import lru_cache

import numpy as np

from repro.api import (
    ArraySource,
    HistogramFleet,
    HistogramSession,
    ParallelExecutor,
    ShardPlan,
)
from repro.core.params import GreedyParams, TesterParams
from repro.distributions import families

N = 4_096
FLEET_SIZE = 64
STREAM_LENGTH = 100_000
TEST_PARAMS = TesterParams(num_sets=15, set_size=8_000)
L2_GRID = [
    (k, eps)
    for k in (4, 8)
    for eps in (0.2, 0.225, 0.25, 0.275, 0.3, 0.325, 0.35, 0.375)
]
L1_GRID = [(k, eps) for k in (4, 8) for eps in (0.2, 0.25, 0.3, 0.35)]
_SEEDS = list(range(FLEET_SIZE))

# One pool for the whole module: the serving plane keeps its workers
# hot across sweeps (pool spin-up happens inside the warmup round).
EXECUTOR = ParallelExecutor(4, plan=ShardPlan(4))
atexit.register(EXECUTOR.close)

OOC_N = 8_192
OOC_STREAM = 200_000
OOC_PARAMS = GreedyParams(
    weight_sample_size=1_200_000,
    collision_sets=7,
    collision_set_size=700_000,
    rounds=2,
)
# With ~1.2M weight samples over an 8k domain the T' endpoint set is the
# whole domain; the cap keeps the candidate self-cost pass (identical in
# both kernels — the pair isolates the prefix compile) at a CI-friendly
# size.  Both kernels subsample from the same generator state, so the
# pair stays byte-identical.
OOC_MAX_CANDIDATES = 500_000


@lru_cache(maxsize=None)
def _sources() -> tuple[ArraySource, ...]:
    """64 bootstrap streams: observed columns of a zipf base (cached;
    both kernels of a pair serve the same streams)."""
    base = families.zipf(N, 1.0)
    return tuple(
        ArraySource(base.sample(STREAM_LENGTH, np.random.default_rng(1_000 + f)), N)
        for f in range(FLEET_SIZE)
    )


@lru_cache(maxsize=None)
def _ooc_source() -> ArraySource:
    """One wide column for the out-of-core learn pair."""
    base = families.zipf(OOC_N, 1.0)
    return ArraySource(base.sample(OOC_STREAM, np.random.default_rng(5_000)), OOC_N)


def _serving_shard():
    """The t11 tester sweep through one executor-driven fleet."""
    fleet = HistogramFleet(
        _sources(), N, rngs=_SEEDS, test_budget=TEST_PARAMS, executor=EXECUTOR
    )
    l2 = fleet.test_many(L2_GRID, norm="l2")
    l1 = fleet.test_many(L1_GRID, norm="l1")
    min_k_l2 = fleet.min_k(0.3, max_k=8, norm="l2")
    min_k_l1 = fleet.min_k(0.3, max_k=8, norm="l1")
    return l2, l1, min_k_l2, min_k_l1


def _serving_loop():
    """The same sweep, one fresh serial session per stream."""
    l2, l1, min_k_l2, min_k_l1 = [], [], [], []
    for source, seed in zip(_sources(), _SEEDS):
        session = HistogramSession(source, N, rng=seed, test_budget=TEST_PARAMS)
        l2.append(session.test_many(L2_GRID, norm="l2"))
        l1.append(session.test_many(L1_GRID, norm="l1"))
        min_k_l2.append(session.min_k(0.3, max_k=8, norm="l2"))
        min_k_l1.append(session.min_k(0.3, max_k=8, norm="l1"))
    return l2, l1, min_k_l2, min_k_l1


def _learn_shard():
    """One big learn with the sharded compile (4 shards, 4 workers)."""
    session = HistogramSession(
        _ooc_source(), OOC_N, rng=0, learn_budget=OOC_PARAMS, executor=EXECUTOR
    )
    return session.learn(8, 0.25, max_candidates=OOC_MAX_CANDIDATES)


def _learn_loop():
    """The same learn through the monolithic single-buffer compile."""
    session = HistogramSession(_ooc_source(), OOC_N, rng=0, learn_budget=OOC_PARAMS)
    return session.learn(8, 0.25, max_candidates=OOC_MAX_CANDIDATES)


def test_shard_serving_64(benchmark):
    """64-stream sweep, workers=4 executor (bar: >= 2.5x over the loop)."""
    results = benchmark.pedantic(
        _serving_shard, rounds=4, iterations=1, warmup_rounds=1
    )
    assert results == _serving_loop()  # byte-identical verdicts and logs


def test_shard_serving_64_loop(benchmark):
    """The looped-session baseline for the 64-stream sweep."""
    results = benchmark.pedantic(
        _serving_loop, rounds=4, iterations=1, warmup_rounds=1
    )
    assert len(results[0]) == FLEET_SIZE


def test_shard_learn_outofcore(benchmark):
    """Out-of-core-scale learn through the sharded compile."""
    result = benchmark.pedantic(
        _learn_shard, rounds=2, iterations=1, warmup_rounds=1
    )
    reference = _learn_loop()
    assert np.array_equal(result.histogram.values, reference.histogram.values)
    assert np.array_equal(
        result.histogram.boundaries, reference.histogram.boundaries
    )


def test_shard_learn_outofcore_loop(benchmark):
    """The monolithic-compile baseline for the out-of-core learn."""
    result = benchmark.pedantic(
        _learn_loop, rounds=2, iterations=1, warmup_rounds=1
    )
    assert result.histogram.num_pieces >= 1
