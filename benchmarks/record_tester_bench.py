"""Summarise tester benchmark runs into ``BENCH_tester.json``.

``bench_t10_tester_compiled.py`` benchmarks every workload twice —
``<kernel>`` on the compiled engine and ``<kernel>_full`` on the
per-query path — inside one run, so a single ``pytest-benchmark``
json carries its own before/after pairing.  Two modes:

* seed / refresh the checked-in record::

      python benchmarks/record_tester_bench.py \
          --run run.json --out BENCH_tester.json

* diff a fresh CI run against the checked-in record (the run's compiled
  means are compared to the record's ``compiled_s`` — the perf
  trajectory — while the speedup is still computed from the run's own
  pairing)::

      python benchmarks/record_tester_bench.py \
          --run run.json --baseline BENCH_tester.json --out BENCH_tester.ci.json

The summary keeps one entry per kernel pair (full/compiled mean seconds
and the speedup ratio), small enough to live in the repository and be
diffed by future PRs.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

FULL_SUFFIX = "_full"


def _means(pytest_benchmark_json: str) -> dict[str, dict[str, float]]:
    with open(pytest_benchmark_json) as handle:
        data = json.load(handle)
    return {
        bench["name"]: {
            "mean_s": bench["stats"]["mean"],
            "stddev_s": bench["stats"]["stddev"],
            "rounds": bench["stats"]["rounds"],
        }
        for bench in data["benchmarks"]
    }


def _summary(
    means: dict[str, dict[str, float]],
    baseline: dict[str, dict] | None = None,
) -> dict:
    benchmarks = {}
    for name, stats in means.items():
        if name.endswith(FULL_SUFFIX) or not name.startswith("test_tester"):
            continue
        entry = {
            "compiled_s": round(stats["mean_s"], 5),
            "compiled_stddev_s": round(stats["stddev_s"], 5),
        }
        full = means.get(name + FULL_SUFFIX)
        if full is not None:
            entry["full_s"] = round(full["mean_s"], 5)
            if stats["mean_s"] > 0:
                entry["speedup"] = round(full["mean_s"] / stats["mean_s"], 2)
        if baseline is not None and name in baseline:
            recorded = baseline[name].get("compiled_s")
            if recorded and stats["mean_s"] > 0:
                entry["baseline_compiled_s"] = recorded
                entry["vs_baseline"] = round(recorded / stats["mean_s"], 2)
        benchmarks[name] = entry
    return {
        "suite": "bench_t10_tester_compiled kernel pairs (each workload runs "
        "on engine='compiled' and engine='full' in the same session; "
        "speedup = full_s / compiled_s, cold compile included)",
        "python": platform.python_version(),
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--run", required=True, help="pytest-benchmark json of a run")
    parser.add_argument("--baseline", help="checked-in BENCH_tester.json to diff against")
    parser.add_argument("--out", default="BENCH_tester.json", help="output path")
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)["benchmarks"]
    summary = _summary(_means(args.run), baseline)

    with open(args.out, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, entry in sorted(summary["benchmarks"].items()):
        ratio = f' ({entry["speedup"]}x)' if "speedup" in entry else ""
        drift = (
            f' [vs baseline {entry["vs_baseline"]}x]' if "vs_baseline" in entry else ""
        )
        print(f'{name}: {entry["compiled_s"]}s{ratio}{drift}')
    return 0


if __name__ == "__main__":
    sys.exit(main())
