"""Summarise tester benchmark runs into ``BENCH_tester.json``.

``bench_t10_tester_compiled.py`` benchmarks every workload twice —
``<kernel>`` on the compiled engine and ``<kernel>_full`` on the
per-query path — inside one run, so a single ``pytest-benchmark``
json carries its own before/after pairing.  Two modes:

* seed / refresh the checked-in record::

      python benchmarks/record_tester_bench.py \
          --run run.json --out BENCH_tester.json

* diff a fresh CI run against the checked-in record (the run's compiled
  means are compared to the record's ``compiled_s`` — the perf
  trajectory — while the speedup is still computed from the run's own
  pairing)::

      python benchmarks/record_tester_bench.py \
          --run run.json --baseline BENCH_tester.json --out BENCH_tester.ci.json

The summary keeps one entry per kernel pair (full/compiled mean seconds
and the speedup ratio), small enough to live in the repository and be
diffed by future PRs.  The reduction itself is the shared paired
recorder (``benchmarks/_recorder.py``), parameterised by this suite's
kernel prefix and key names.
"""

from __future__ import annotations

import sys

from _recorder import PairedBenchSpec, paired_main

SPEC = PairedBenchSpec(
    kernel_prefix="test_tester",
    pair_suffix="_full",
    primary="compiled",
    pair="full",
    stat="mean_s",
    extra="stddev",
    suite="bench_t10_tester_compiled kernel pairs (each workload runs "
    "on engine='compiled' and engine='full' in the same session; "
    "speedup = full_s / compiled_s, cold compile included)",
)


def main(argv: list[str] | None = None) -> int:
    return paired_main(SPEC, __doc__, "BENCH_tester.json", argv)


if __name__ == "__main__":
    sys.exit(main())
