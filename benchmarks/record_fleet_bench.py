"""Summarise fleet benchmark runs into ``BENCH_fleet.json``.

``bench_t11_fleet.py`` benchmarks every workload twice in one run —
``<kernel>`` through :class:`repro.api.HistogramFleet` and
``<kernel>_loop`` through the looped-session baseline — so a single
``pytest-benchmark`` json carries its own pairing.  Two modes:

* seed / refresh the checked-in record::

      python benchmarks/record_fleet_bench.py \
          --run run.json --out BENCH_fleet.json

* diff a fresh CI run against the checked-in record (the run's fleet
  times are compared to the record's ``fleet_s`` — the perf trajectory —
  while the speedup is still computed from the run's own pairing)::

      python benchmarks/record_fleet_bench.py \
          --run run.json --baseline BENCH_fleet.json --out BENCH_fleet.ci.json

Speedups are computed from each kernel's *minimum* round time: the pairs
run interleaved on shared CI machines, and the minimum is the standard
noise-robust location estimate for timing under contention (the mean is
also recorded).  The summary keeps one entry per kernel pair, small
enough to live in the repository and be diffed by future PRs.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

LOOP_SUFFIX = "_loop"


def _stats(pytest_benchmark_json: str) -> dict[str, dict[str, float]]:
    with open(pytest_benchmark_json) as handle:
        data = json.load(handle)
    return {
        bench["name"]: {
            "mean_s": bench["stats"]["mean"],
            "min_s": bench["stats"]["min"],
            "rounds": bench["stats"]["rounds"],
        }
        for bench in data["benchmarks"]
    }


def _summary(
    stats: dict[str, dict[str, float]],
    baseline: dict[str, dict] | None = None,
) -> dict:
    benchmarks = {}
    for name, fleet in stats.items():
        if name.endswith(LOOP_SUFFIX) or not name.startswith("test_fleet"):
            continue
        entry = {
            "fleet_s": round(fleet["min_s"], 5),
            "fleet_mean_s": round(fleet["mean_s"], 5),
        }
        loop = stats.get(name + LOOP_SUFFIX)
        if loop is not None:
            entry["loop_s"] = round(loop["min_s"], 5)
            entry["loop_mean_s"] = round(loop["mean_s"], 5)
            if fleet["min_s"] > 0:
                entry["speedup"] = round(loop["min_s"] / fleet["min_s"], 2)
        if baseline is not None and name in baseline:
            recorded = baseline[name].get("fleet_s")
            if recorded and fleet["min_s"] > 0:
                entry["baseline_fleet_s"] = recorded
                entry["vs_baseline"] = round(recorded / fleet["min_s"], 2)
        benchmarks[name] = entry
    return {
        "suite": "bench_t11_fleet kernel pairs (each workload runs through "
        "HistogramFleet and as a looped-session baseline in the same run; "
        "speedup = loop_s / fleet_s over per-kernel minimum round times, "
        "cold compile included)",
        "python": platform.python_version(),
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--run", required=True, help="pytest-benchmark json of a run")
    parser.add_argument("--baseline", help="checked-in BENCH_fleet.json to diff against")
    parser.add_argument("--out", default="BENCH_fleet.json", help="output path")
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)["benchmarks"]
    summary = _summary(_stats(args.run), baseline)

    with open(args.out, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, entry in sorted(summary["benchmarks"].items()):
        ratio = f' ({entry["speedup"]}x)' if "speedup" in entry else ""
        drift = (
            f' [vs baseline {entry["vs_baseline"]}x]' if "vs_baseline" in entry else ""
        )
        print(f'{name}: {entry["fleet_s"]}s{ratio}{drift}')
    return 0


if __name__ == "__main__":
    sys.exit(main())
