"""Summarise fleet benchmark runs into ``BENCH_fleet.json``.

``bench_t11_fleet.py`` benchmarks every workload twice in one run —
``<kernel>`` through :class:`repro.api.HistogramFleet` and
``<kernel>_loop`` through the looped-session baseline — so a single
``pytest-benchmark`` json carries its own pairing.  Two modes:

* seed / refresh the checked-in record::

      python benchmarks/record_fleet_bench.py \
          --run run.json --out BENCH_fleet.json

* diff a fresh CI run against the checked-in record (the run's fleet
  times are compared to the record's ``fleet_s`` — the perf trajectory —
  while the speedup is still computed from the run's own pairing)::

      python benchmarks/record_fleet_bench.py \
          --run run.json --baseline BENCH_fleet.json --out BENCH_fleet.ci.json

Speedups are computed from each kernel's *minimum* round time: the pairs
run interleaved on shared CI machines, and the minimum is the standard
noise-robust location estimate for timing under contention (the mean is
also recorded).  The reduction itself is the shared paired recorder
(``benchmarks/_recorder.py``), parameterised by this suite's kernel
prefix and key names.
"""

from __future__ import annotations

import sys

from _recorder import PairedBenchSpec, paired_main

SPEC = PairedBenchSpec(
    kernel_prefix="test_fleet",
    pair_suffix="_loop",
    primary="fleet",
    pair="loop",
    stat="min_s",
    extra="mean",
    suite="bench_t11_fleet kernel pairs (each workload runs through "
    "HistogramFleet and as a looped-session baseline in the same run; "
    "speedup = loop_s / fleet_s over per-kernel minimum round times, "
    "cold compile included)",
)


def main(argv: list[str] | None = None) -> int:
    return paired_main(SPEC, __doc__, "BENCH_fleet.json", argv)


if __name__ == "__main__":
    sys.exit(main())
