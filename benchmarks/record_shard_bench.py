"""Summarise shard-engine benchmark runs into ``BENCH_shard.json``.

``bench_t12_shard.py`` benchmarks every workload twice in one run —
``<kernel>`` through the parallel shard engine
(:class:`repro.api.ParallelExecutor`, ``workers=4``) and
``<kernel>_loop`` through the serial baseline — so a single
``pytest-benchmark`` json carries its own pairing.  Two modes:

* seed / refresh the checked-in record::

      python benchmarks/record_shard_bench.py \
          --run run.json --out BENCH_shard.json

* diff a fresh CI run against the checked-in record::

      python benchmarks/record_shard_bench.py \
          --run run.json --baseline BENCH_shard.json --out BENCH_shard.ci.json

Speedups use each kernel's *minimum* round time (the pairs run
interleaved on shared CI machines; the mean is also recorded).  The
acceptance bars for this suite: the 64-stream serving sweep at
``workers=4`` records >= 2x over the looped-session baseline, and
both learn pairs — the out-of-core lockstep grid and the 64-member
fleet ``learn_many`` — record >= 2x over their incremental loops (CI
additionally holds the learn pairs to a 1.5x floor at smoke size via
``benchmarks/perf_guard.py``).  The reduction itself is the shared
paired recorder (``benchmarks/_recorder.py``).
"""

from __future__ import annotations

import sys

from _recorder import PairedBenchSpec, paired_main

SPEC = PairedBenchSpec(
    kernel_prefix="test_shard",
    pair_suffix="_loop",
    primary="shard",
    pair="loop",
    stat="min_s",
    extra="mean",
    suite="bench_t12_shard kernel pairs (each workload runs through the "
    "parallel shard engine at workers=4 and as its serial baseline in "
    "the same run; speedup = loop_s / shard_s over per-kernel minimum "
    "round times, cold compile included)",
)


def main(argv: list[str] | None = None) -> int:
    return paired_main(SPEC, __doc__, "BENCH_shard.json", argv)


if __name__ == "__main__":
    sys.exit(main())
