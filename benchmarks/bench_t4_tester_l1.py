"""T4 — the l1 tiling k-histogram tester (Theorem 4)."""

from __future__ import annotations

from conftest import emit

from repro.core.params import TesterParams
from repro.core.tester import test_k_histogram_l1 as khist_test_l1
from repro.distributions import families
from repro.experiments.testing import run_t4


def test_t4_table(benchmark, quick_config):
    """Regenerate T4; YES rows accept >= 2/3, NO rows accept <= 1/3."""
    result = benchmark.pedantic(run_t4, args=(quick_config,), rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        if row[1] == "YES":
            assert row[3] >= 2 / 3
        else:
            assert row[3] <= 1 / 3


def test_l1_tester_kernel(benchmark):
    """Micro: one l1 test run (r=15, m=30k) on n=256."""
    dist = families.sawtooth(256)
    params = TesterParams(num_sets=15, set_size=30_000)
    benchmark(
        lambda: khist_test_l1(dist, 256, 4, 0.25, params=params, rng=1)
    )
