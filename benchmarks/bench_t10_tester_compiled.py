"""T10 — the compiled tester engine vs the per-query path.

Each workload is benchmarked twice over one prebuilt
:class:`~repro.samples.estimators.MultiSketch` — ``engine="compiled"``
(including its compile step, so every round pays the cold cost) and
``engine="full"`` — and the pairs feed ``BENCH_tester.json`` via
``benchmarks/record_tester_bench.py``.  Two workloads:

* a 4-point l2 ``test_many``-style grid (the session batch shape;
  acceptance bar: the compiled pair must show >= 3x);
* one large l1 test on a sawtooth — Algorithm 2's worst case, committing
  ``k`` short pieces at ~14 binary-search probes each.

Results are asserted byte-identical across engines on every round.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.flatness import compile_tester_sketches
from repro.core.params import TesterParams

# Alias the paper-named ``test*`` functions so pytest does not collect them.
from repro.core.tester import test_l1_on_sketch as l1_on_sketch
from repro.core.tester import test_l2_on_sketch as l2_on_sketch
from repro.distributions import families
from repro.samples.estimators import MultiSketch

GRID_N = 4_096
GRID_PARAMS = TesterParams(num_sets=15, set_size=60_000)
GRID = [(2, 0.3), (4, 0.25), (6, 0.25), (8, 0.2)]

LARGE_N = 16_384
LARGE_PARAMS = TesterParams(num_sets=21, set_size=120_000)
LARGE_K = 64
LARGE_EPS = 0.25


@lru_cache(maxsize=None)
def _grid_multi() -> MultiSketch:
    dist = families.zipf(GRID_N, 1.0)
    return MultiSketch.from_sample_sets(
        dist.sample_sets(
            GRID_PARAMS.num_sets, GRID_PARAMS.set_size, np.random.default_rng(1)
        ),
        GRID_N,
    )


@lru_cache(maxsize=None)
def _large_multi() -> MultiSketch:
    dist = families.sawtooth(LARGE_N)
    return MultiSketch.from_sample_sets(
        dist.sample_sets(
            LARGE_PARAMS.num_sets, LARGE_PARAMS.set_size, np.random.default_rng(2)
        ),
        LARGE_N,
    )


def _grid_compiled():
    multi = _grid_multi()
    compiled = compile_tester_sketches(multi)  # cold compile every round
    return [
        l2_on_sketch(
            multi, GRID_N, k, eps, GRID_PARAMS, engine="compiled", compiled=compiled
        )
        for k, eps in GRID
    ]


def _grid_full():
    multi = _grid_multi()
    return [
        l2_on_sketch(multi, GRID_N, k, eps, GRID_PARAMS, engine="full")
        for k, eps in GRID
    ]


def _large_compiled():
    return l1_on_sketch(
        _large_multi(), LARGE_N, LARGE_K, LARGE_EPS, LARGE_PARAMS, engine="compiled"
    )


def _large_full():
    return l1_on_sketch(
        _large_multi(), LARGE_N, LARGE_K, LARGE_EPS, LARGE_PARAMS, engine="full"
    )


def test_tester_grid_kernel(benchmark):
    """4-point l2 grid on the compiled engine (cold compile included)."""
    results = benchmark.pedantic(_grid_compiled, rounds=5, iterations=1, warmup_rounds=1)
    assert results == _grid_full()  # byte-identical verdicts and logs


def test_tester_grid_kernel_full(benchmark):
    """4-point l2 grid on the per-query reference path."""
    results = benchmark.pedantic(_grid_full, rounds=5, iterations=1, warmup_rounds=1)
    assert len(results) == len(GRID)


def test_tester_l1_large_kernel(benchmark):
    """One large l1 sawtooth test on the compiled engine."""
    result = benchmark.pedantic(_large_compiled, rounds=2, iterations=1, warmup_rounds=1)
    assert result == _large_full()


def test_tester_l1_large_kernel_full(benchmark):
    """One large l1 sawtooth test on the per-query reference path."""
    result = benchmark.pedantic(_large_full, rounds=2, iterations=1, warmup_rounds=1)
    assert result.num_flatness_queries > 500  # the query-heavy regime
